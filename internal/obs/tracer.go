package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Event is a point-in-time marker inside a span (e.g. a contract epoch
// change during renegotiation).
type Event struct {
	Name  string    `json:"name"`
	At    time.Time `json:"at"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one recording stage of an invocation. A nil *Span is the
// disabled fast path: every method is a no-op on it, so instrumented
// code needs no "is tracing on" branches beyond the one at creation.
type Span struct {
	tracer       *Tracer
	sc           SpanContext
	parent       SpanID
	remoteParent bool
	name         string
	start        time.Time
	// ret, when armed (CaptureReturn), accumulates compact summaries of
	// this span and its children for the reply-direction SCTraceReturn
	// service context. Children inherit the capture.
	ret *returnCapture

	mu     sync.Mutex
	op     string
	attrs  []Attr
	events []Event
	errMsg string
	ended  bool
}

// Context returns the span's propagation context (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetOperation records the application operation the span serves.
func (s *Span) SetOperation(op string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.op = op
	s.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// AddEvent records a point-in-time event on the span.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, At: time.Now(), Attrs: attrs})
	s.mu.Unlock()
}

// RecordError marks the span failed. A nil err is ignored, so callers
// can record unconditionally.
func (s *Span) RecordError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// Child starts a sub-span sharing the trace ID. On a nil receiver it
// returns nil, keeping the disabled path free.
func (s *Span) Child(name string) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	sp := s.tracer.newSpan(name, s.sc.TraceID, s.sc.SpanID, false)
	sp.ret = s.ret
	return sp
}

// CaptureReturn arms the span (and every child created afterwards) to
// summarise itself on End into a buffer the server piggybacks on the
// reply's SCTraceReturn service context. Call before creating children.
func (s *Span) CaptureReturn() {
	if s == nil {
		return
	}
	s.ret = &returnCapture{}
}

// ReturnPayload encodes the captured span summaries for the reply's
// SCTraceReturn context, or nil when nothing was captured or the
// encoding exceeds the size budget.
func (s *Span) ReturnPayload() []byte {
	if s == nil || s.ret == nil {
		return nil
	}
	return s.ret.payload(s.sc.TraceID)
}

// End closes the span and hands it to the collector. Ending twice
// records once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID:      s.sc.TraceID.String(),
		SpanID:       s.sc.SpanID.String(),
		Name:         s.name,
		Operation:    s.op,
		Start:        s.start,
		Duration:     time.Since(s.start),
		Err:          s.errMsg,
		Attrs:        s.attrs,
		Events:       s.events,
		RemoteParent: s.remoteParent,
	}
	s.mu.Unlock()
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	if s.ret != nil {
		s.ret.add(rec)
	}
	if s.tracer == nil {
		return
	}
	if s.tracer.sampler != nil {
		// A trace quiesces — and gets its keep/drop verdict — once its
		// decision-point span ends: the local root, or the remote-parented
		// server root that closes this process's part of the trace.
		s.tracer.sampler.offer(rec, s.parent.IsZero() || s.remoteParent)
		return
	}
	if s.tracer.collector != nil {
		s.tracer.collector.record(rec)
	}
}

// Tracer mints spans into a collector. A nil *Tracer is the disabled
// tracer: StartSpan returns the context unchanged and a nil span.
type Tracer struct {
	collector *Collector
	// sampler, when non-nil, intercepts finished spans for tail-based
	// keep/drop; only kept traces reach the collector.
	sampler *TailSampler
}

// NewTracer constructs a tracer recording into c.
func NewTracer(c *Collector) *Tracer { return &Tracer{collector: c} }

// Collector returns the tracer's span sink (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.collector
}

// SetSampler routes finished spans through a tail sampler instead of
// recording them directly. Install before spans start; swapping samplers
// mid-trace strands the old sampler's pending entries.
func (t *Tracer) SetSampler(s *TailSampler) {
	if t == nil {
		return
	}
	t.sampler = s
}

// Sampler returns the installed tail sampler, nil when sampling is off.
func (t *Tracer) Sampler() *TailSampler {
	if t == nil {
		return nil
	}
	return t.sampler
}

// Inject records a span that finished in another process (a summary
// returned on SCTraceReturn). It feeds the sampler's pending trace when
// one exists, otherwise follows the trace's verdict.
func (t *Tracer) Inject(rec SpanRecord) {
	if t == nil {
		return
	}
	if t.sampler != nil {
		t.sampler.inject(rec)
		return
	}
	if t.collector != nil {
		t.collector.record(rec)
	}
}

func (t *Tracer) newSpan(name string, trace TraceID, parent SpanID, remote bool) *Span {
	sp := &Span{
		tracer:       t,
		sc:           SpanContext{TraceID: trace, SpanID: newSpanID(), Sampled: true},
		parent:       parent,
		remoteParent: remote,
		name:         name,
		start:        time.Now(),
	}
	if t.sampler != nil {
		t.sampler.spanStarted(sp.sc.TraceID.String())
	}
	return sp
}

// StartSpan begins a span under the span already in ctx (same trace), or
// a fresh trace root when ctx carries none. The returned context carries
// the new span for StartChild further down the path.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var sp *Span
	if parent := SpanFromContext(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = t.newSpan(name, newTraceID(), SpanID{}, false)
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartRemote begins a server-side span whose parent lives in another
// process (the wire span whose context arrived in the request's SCTrace
// service context). An invalid parent starts a fresh trace, so untraced
// clients still produce server-side spans. A valid parent that is
// explicitly unsampled returns nil: the client already decided this
// trace records nothing, and the server must not pay span cost for it.
func (t *Tracer) StartRemote(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.newSpan(name, newTraceID(), SpanID{}, false)
	}
	if !parent.Sampled {
		return nil
	}
	return t.newSpan(name, parent.TraceID, parent.SpanID, true)
}

// ctxKey keys the active span in a context.Context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartChild begins a child of the span in ctx. When ctx carries no span
// (tracing off, or an uninstrumented entry point) it returns ctx and nil
// — the one-branch fast path every mid-stack stage uses.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.Child(name)
	return ContextWithSpan(ctx, sp), sp
}
