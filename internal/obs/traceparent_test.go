package obs

import (
	"strings"
	"testing"
)

// A well-formed sampled traceparent to mutate from.
const goodTraceparent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"

func TestParseTraceparentMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"too short", goodTraceparent[:54]},
		{"truncated to version", "00"},
		{"truncated mid trace id", "00-0af7651916cd43dd"},
		{"missing first dash", "00" + "x" + goodTraceparent[3:]},
		{"missing second dash", strings.Replace(goodTraceparent, "-b7ad", "xb7ad", 1)},
		{"missing third dash", goodTraceparent[:52] + "x01"},
		{"version ff reserved", "ff" + goodTraceparent[2:]},
		{"non-hex version", "zz" + goodTraceparent[2:]},
		{"non-hex trace id", "00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"non-hex span id", "00-0af7651916cd43dd8448eb211c80319c-z7ad6b7169203331-01"},
		{"non-hex flags", goodTraceparent[:53] + "zz"},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
		{"future version without extension dash", "01" + goodTraceparent[2:] + "x"},
		{"uppercase hex rejected", strings.ToUpper(goodTraceparent)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent([]byte(tc.in))
			if ok {
				t.Fatalf("accepted malformed traceparent %q -> %+v", tc.in, sc)
			}
			if sc.Valid() {
				t.Fatalf("rejected parse still returned a valid context: %+v", sc)
			}
		})
	}
}

func TestParseTraceparentAccepted(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		sampled bool
	}{
		{"sampled", goodTraceparent, true},
		{"unsampled", goodTraceparent[:53] + "00", false},
		{"extra flag bits", goodTraceparent[:53] + "03", true},
		{"future version with extension", "01" + goodTraceparent[2:] + "-extra", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ParseTraceparent([]byte(tc.in))
			if !ok || !sc.Valid() {
				t.Fatalf("rejected well-formed traceparent %q", tc.in)
			}
			if sc.Sampled != tc.sampled {
				t.Fatalf("sampled = %v, want %v", sc.Sampled, tc.sampled)
			}
		})
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add([]byte(goodTraceparent))
	f.Add([]byte(goodTraceparent[:53] + "00"))
	f.Add([]byte(""))
	f.Add([]byte("00-00000000000000000000000000000000-0000000000000000-00"))
	f.Add([]byte("ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"))
	f.Add([]byte("01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-suffix"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, ok := ParseTraceparent(data)
		if !ok {
			if sc.Valid() {
				t.Fatalf("rejected parse returned valid context %+v for %q", sc, data)
			}
			return
		}
		if !sc.Valid() {
			t.Fatalf("accepted parse returned invalid context for %q", data)
		}
		// Round-trip: re-rendering an accepted context and re-parsing it
		// must preserve identity and the sampled bit.
		again, ok2 := ParseTraceparent([]byte(sc.Traceparent()))
		if !ok2 {
			t.Fatalf("re-render of accepted %q did not parse", data)
		}
		if again.TraceID != sc.TraceID || again.SpanID != sc.SpanID || again.Sampled != sc.Sampled {
			t.Fatalf("round trip changed context: %+v vs %+v", sc, again)
		}
	})
}
