package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the debug endpoints over the bundle:
//
//	/metrics              text exposition of the registry
//	/metrics?format=json  the same as JSON
//	/trace                retained spans as JSON, oldest first
//	/trace?trace=<id>     one trace's spans, ordered by start time
//	/trace/ops            per-operation span aggregation as JSON
//	/flight               flight-recorder ring + anomaly dump index
//	/flight?dump=<id>     one frozen anomaly dump
//	/health               liveness (200 as long as the process serves)
//	/ready                readiness checks as JSON; 503 when any fails
//
// /trace and /flight honour ?limit=N to bound the records returned
// (newest N), so a large ring cannot produce a multi-MB response.
// Mount it on any mux or serve it directly (cmd/maqs-server does).
func (o *Observability) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := o.Registry.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanRecord
		id := r.URL.Query().Get("trace")
		if id == "" {
			id = r.URL.Query().Get("trace_id")
		}
		if id != "" {
			spans = o.Collector.Trace(id)
		} else {
			spans = o.Collector.Snapshot()
		}
		if limit, ok := limitParam(w, r); !ok {
			return
		} else if limit > 0 && limit < len(spans) {
			spans = spans[len(spans)-limit:]
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/trace/ops", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Collector.Operations())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		var fr *FlightRecorder
		if o != nil {
			fr = o.Flight
		}
		if id := r.URL.Query().Get("dump"); id != "" {
			d, ok := fr.Dump(id)
			if !ok {
				http.Error(w, "unknown dump id", http.StatusNotFound)
				return
			}
			writeJSON(w, d)
			return
		}
		limit, ok := limitParam(w, r)
		if !ok {
			return
		}
		if limit == 0 {
			// Unbounded /flight defaults to the dump snapshot depth so
			// the index page stays small; ?limit=-1 is not offered —
			// dumps carry the forensic tail.
			limit = DefaultFlightSnapshotDepth
		}
		writeJSON(w, fr.Snapshot(limit))
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		var p *Profiler
		if o != nil {
			p = o.Profiler
		}
		id := r.URL.Query().Get("id")
		if id == "" {
			caps := p.Captures()
			if caps == nil {
				caps = []ProfileCaptureSummary{}
			}
			writeJSON(w, map[string]any{"enabled": p != nil, "captures": caps})
			return
		}
		c, ok := p.Capture(id)
		if !ok {
			http.Error(w, "unknown capture id", http.StatusNotFound)
			return
		}
		var body []byte
		switch kind := r.URL.Query().Get("kind"); kind {
		case "", "cpu":
			body = c.CPU
		case "heap":
			body = c.Heap
		default:
			http.Error(w, "kind must be cpu or heap", http.StatusBadRequest)
			return
		}
		if len(body) == 0 {
			http.Error(w, "profile not (yet) available for this capture", http.StatusNotFound)
			return
		}
		// pprof payloads are binary protobuf (possibly gzip-compressed);
		// serve them raw for `go tool pprof`.
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(body)
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/ready", func(w http.ResponseWriter, r *http.Request) {
		rep := o.Ready()
		if !rep.Ready {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusServiceUnavailable)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			// Dynamically mounted debug pages (SetDebugPage) serve any
			// path the built-ins don't own — e.g. /loadgen.
			if o != nil {
				if fn, ok := o.pages.Load(r.URL.Path); ok {
					writeJSON(w, fn.(func() any)())
					return
				}
			}
			http.NotFound(w, r)
			return
		}
		paths := []string{
			"/metrics", "/metrics?format=json", "/trace", "/trace?trace_id=<id>",
			"/trace/ops", "/flight", "/flight?dump=<id>",
			"/profile", "/profile?id=<id>&kind=cpu|heap", "/health", "/ready",
		}
		if o != nil {
			o.pages.Range(func(k, _ any) bool {
				paths = append(paths, k.(string))
				return true
			})
		}
		// The index honours ?format=json like every other endpoint, so
		// tooling can discover the surface without scraping text.
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, map[string]any{"service": "maqs observability", "endpoints": paths})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("maqs observability\n\n"))
		for _, p := range paths {
			_, _ = w.Write([]byte(p + "\n"))
		}
		_, _ = w.Write([]byte("\n/trace and /flight accept ?limit=N\n"))
	})
	return mux
}

// limitParam parses ?limit=N (0 when absent). On a malformed or
// negative value it writes a 400 and reports ok=false.
func limitParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
