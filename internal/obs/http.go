package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the debug endpoints over the bundle:
//
//	/metrics            text exposition of the registry
//	/metrics?format=json  the same as JSON
//	/trace              retained spans as JSON, oldest first
//	/trace?trace=<id>   one trace's spans, ordered by start time
//	/trace/ops          per-operation span aggregation as JSON
//
// Mount it on any mux or serve it directly (cmd/maqs-server does).
func (o *Observability) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := o.Registry.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var spans []SpanRecord
		if id := r.URL.Query().Get("trace"); id != "" {
			spans = o.Collector.Trace(id)
		} else {
			spans = o.Collector.Snapshot()
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/trace/ops", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, o.Collector.Operations())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("maqs observability\n\n/metrics\n/metrics?format=json\n/trace\n/trace?trace=<id>\n/trace/ops\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
