package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsTTL bounds how often runtime.ReadMemStats runs: the call
// stops the world briefly, so scrapes within the window share a cached
// reading instead of paying for it per metric per scrape.
const memStatsTTL = 250 * time.Millisecond

// memStatsCache is process-wide on purpose — every bundle in the
// process sees the same runtime, so they share one reader.
var memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func readMemStats() runtime.MemStats {
	memStatsCache.mu.Lock()
	defer memStatsCache.mu.Unlock()
	if now := time.Now(); now.Sub(memStatsCache.at) > memStatsTTL {
		runtime.ReadMemStats(&memStatsCache.stat)
		memStatsCache.at = now
	}
	return memStatsCache.stat
}

// RegisterRuntimeMetrics surfaces Go runtime health on the registry:
//
//	maqs_go_goroutines                current goroutine count (gauge)
//	maqs_go_heap_bytes                live heap bytes (gauge)
//	maqs_go_gc_pause_seconds_total    cumulative stop-the-world pause (float)
//
// All three are callback-backed and evaluated at snapshot time; memory
// stats are cached (memStatsTTL) so frequent scrapes stay cheap.
// NewWithConfig registers them automatically; hand-built bundles can
// call this themselves. No-op on a nil registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("maqs_go_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc("maqs_go_heap_bytes", func() int64 {
		return int64(readMemStats().HeapAlloc)
	})
	r.FloatFunc("maqs_go_gc_pause_seconds_total", func() float64 {
		return time.Duration(readMemStats().PauseTotalNs).Seconds()
	})
}
