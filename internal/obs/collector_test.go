package obs

import (
	"strconv"
	"testing"
	"time"
)

func spanAt(name, traceID string, start time.Time, d time.Duration) SpanRecord {
	return SpanRecord{TraceID: traceID, SpanID: "s", Name: name, Start: start, Duration: d}
}

func TestCollectorRingWrap(t *testing.T) {
	c := NewCollector(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		c.record(spanAt("op"+strconv.Itoa(i), "t", base.Add(time.Duration(i)), time.Millisecond))
	}
	if got := c.TotalRecorded(); got != 6 {
		t.Fatalf("TotalRecorded = %d, want 6", got)
	}
	spans := c.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := "op" + strconv.Itoa(2+i); s.Name != want {
			t.Errorf("span %d = %q, want %q (oldest first)", i, s.Name, want)
		}
	}
	// Aggregation survives wrap-around: all 6 spans counted.
	var total uint64
	for _, st := range c.Operations() {
		total += st.Count
	}
	if total != 6 {
		t.Fatalf("aggregated %d spans, want 6", total)
	}
}

func TestCollectorTraceOrdersByStart(t *testing.T) {
	c := NewCollector(8)
	base := time.Now()
	// Recorded out of start order; Trace must sort by Start.
	c.record(spanAt("late", "abc", base.Add(2*time.Second), time.Millisecond))
	c.record(spanAt("early", "abc", base, time.Millisecond))
	c.record(spanAt("other", "zzz", base.Add(time.Second), time.Millisecond))
	got := c.Trace("abc")
	if len(got) != 2 || got[0].Name != "early" || got[1].Name != "late" {
		t.Fatalf("Trace = %+v", got)
	}
	if len(c.Trace("missing")) != 0 {
		t.Error("unknown trace returned spans")
	}
}

func TestCollectorAggregatesErrorsAndBounds(t *testing.T) {
	c := NewCollector(8)
	base := time.Now()
	fast := spanAt("call", "t", base, time.Millisecond)
	slow := spanAt("call", "t", base, 9*time.Millisecond)
	slow.Err = "boom"
	c.record(fast)
	c.record(slow)
	st, ok := c.Operations()["call"]
	if !ok {
		t.Fatal("no aggregate for call")
	}
	if st.Count != 2 || st.Errors != 1 {
		t.Fatalf("count/errors = %d/%d", st.Count, st.Errors)
	}
	if st.Min != time.Millisecond || st.Max != 9*time.Millisecond || st.Total != 10*time.Millisecond {
		t.Fatalf("min/max/total = %v/%v/%v", st.Min, st.Max, st.Total)
	}
}

func TestCollectorResetAndNilSafety(t *testing.T) {
	c := NewCollector(4)
	c.record(spanAt("x", "t", time.Now(), time.Millisecond))
	c.Reset()
	if len(c.Snapshot()) != 0 || c.TotalRecorded() != 0 || len(c.Operations()) != 0 {
		t.Fatal("Reset left state behind")
	}
	var nc *Collector
	if nc.Snapshot() != nil || nc.TotalRecorded() != 0 {
		t.Error("nil collector not inert")
	}
	if ops := nc.Operations(); len(ops) != 0 {
		t.Error("nil collector operations non-empty")
	}
	nc.Reset()
}
