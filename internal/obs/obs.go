package obs

import "encoding/json"

// Observability bundles the three cooperating pieces — metrics registry,
// span collector and tracer — that an ORB (or a whole System) shares.
// A nil *Observability disables everything at zero cost.
type Observability struct {
	// Registry holds the process's metric instruments.
	Registry *Registry
	// Collector retains finished spans.
	Collector *Collector
	// Tracer mints spans into Collector.
	Tracer *Tracer
}

// New constructs an enabled bundle with a default-capacity collector.
func New() *Observability { return NewWithCapacity(0) }

// NewWithCapacity constructs a bundle whose collector retains up to
// spanCapacity spans (DefaultSpanCapacity when non-positive).
func NewWithCapacity(spanCapacity int) *Observability {
	c := NewCollector(spanCapacity)
	return &Observability{
		Registry:  NewRegistry(),
		Collector: c,
		Tracer:    NewTracer(c),
	}
}

// BundleSnapshot is the full JSON export: metrics, per-operation span
// aggregation, and retained spans.
type BundleSnapshot struct {
	Metrics    Snapshot           `json:"metrics"`
	Operations map[string]OpStats `json:"operations"`
	Spans      []SpanRecord       `json:"spans"`
}

// Snapshot captures registry and collector state together.
func (o *Observability) Snapshot() BundleSnapshot {
	var b BundleSnapshot
	if o == nil {
		b.Operations = map[string]OpStats{}
		return b
	}
	b.Metrics = o.Registry.Snapshot()
	b.Operations = o.Collector.Operations()
	b.Spans = o.Collector.Snapshot()
	return b
}

// SnapshotJSON renders the full bundle snapshot as indented JSON.
func (o *Observability) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(o.Snapshot(), "", "  ")
}
