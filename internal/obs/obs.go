package obs

import (
	"encoding/json"
	"sync"
)

// Observability bundles the cooperating pieces — metrics registry, span
// collector, tracer and flight recorder — that an ORB (or a whole
// System) shares. A nil *Observability disables everything at zero cost.
type Observability struct {
	// Registry holds the process's metric instruments.
	Registry *Registry
	// Collector retains finished spans.
	Collector *Collector
	// Tracer mints spans into Collector.
	Tracer *Tracer
	// Flight is the always-on invocation flight recorder (may be nil on
	// hand-built bundles; all recorder methods tolerate that).
	Flight *FlightRecorder
	// Sampler is the tail sampler gating Collector, nil when spans record
	// unconditionally (Config.TailSampling unset).
	Sampler *TailSampler
	// Profiler retains anomaly-triggered CPU/heap captures, nil when
	// profiling is off (Config.Profiling unset).
	Profiler *Profiler

	// health carries liveness/readiness state; created lazily so
	// literal-constructed bundles still work (see health.go).
	health lazyHealth

	// pages holds dynamically mounted debug endpoints (SetDebugPage);
	// the Handler consults it per request, so pages registered after the
	// handler is built still serve.
	pages sync.Map // string -> func() any
}

// SetDebugPage mounts fn's JSON-rendered return value at path on the
// debug Handler ("/loadgen", "/poolstats", ...). The callback runs per
// request; registering a path again replaces the page, a nil fn removes
// it. Paths already owned by the handler (/metrics, /trace, ...) are
// shadowed by the built-ins. No-op on a nil bundle.
func (o *Observability) SetDebugPage(path string, fn func() any) {
	if o == nil || path == "" || path == "/" {
		return
	}
	if fn == nil {
		o.pages.Delete(path)
		return
	}
	o.pages.Store(path, fn)
}

// Config sizes an Observability bundle. The zero value means defaults
// everywhere.
type Config struct {
	// SpanCapacity bounds the span collector ring
	// (DefaultSpanCapacity when non-positive).
	SpanCapacity int
	// FlightCapacity bounds the flight-recorder ring
	// (DefaultFlightCapacity when non-positive).
	FlightCapacity int
	// FlightSnapshotDepth is how many trailing records each anomaly
	// dump freezes (DefaultFlightSnapshotDepth when non-positive).
	FlightSnapshotDepth int
	// FlightMaxDumps bounds retained anomaly dumps
	// (DefaultFlightMaxDumps when non-positive).
	FlightMaxDumps int
	// TailSampling, when non-nil, installs a tail sampler between tracer
	// and collector: spans buffer per trace and only kept traces reach
	// the collector. Nil preserves record-every-span behaviour.
	TailSampling *TailSamplingConfig
	// Profiling, when non-nil, enables anomaly-triggered CPU/heap
	// profiling keyed to flight dumps.
	Profiling *ProfilingConfig
}

// New constructs an enabled bundle with default sizing.
func New() *Observability { return NewWithConfig(Config{}) }

// NewWithCapacity constructs a bundle whose collector retains up to
// spanCapacity spans (DefaultSpanCapacity when non-positive).
func NewWithCapacity(spanCapacity int) *Observability {
	return NewWithConfig(Config{SpanCapacity: spanCapacity})
}

// NewWithConfig constructs a bundle sized by cfg. Go runtime telemetry
// (RegisterRuntimeMetrics) is registered on the bundle's registry.
func NewWithConfig(cfg Config) *Observability {
	c := NewCollector(cfg.SpanCapacity)
	o := &Observability{
		Registry:  NewRegistry(),
		Collector: c,
		Tracer:    NewTracer(c),
		Flight:    NewFlightRecorder(cfg.FlightCapacity, cfg.FlightSnapshotDepth, cfg.FlightMaxDumps),
	}
	if cfg.TailSampling != nil {
		o.Sampler = NewTailSampler(c, o.Registry, *cfg.TailSampling)
		o.Tracer.SetSampler(o.Sampler)
		// Anomalies pin their trace in the pending table so the policy
		// keeps it even when the spans themselves look healthy.
		o.Flight.OnDump(func(_, _, traceID string) { o.Sampler.MarkAnomaly(traceID) })
	}
	if cfg.Profiling != nil {
		o.Profiler = NewProfiler(o.Registry, *cfg.Profiling)
		o.Flight.OnDump(o.Profiler.OnAnomaly)
	}
	RegisterRuntimeMetrics(o.Registry)
	return o
}

// BundleSnapshot is the full JSON export: metrics, per-operation span
// aggregation, retained spans, and the flight-recorder state.
type BundleSnapshot struct {
	Metrics    Snapshot           `json:"metrics"`
	Operations map[string]OpStats `json:"operations"`
	Spans      []SpanRecord       `json:"spans"`
	Flight     *FlightSnapshot    `json:"flight,omitempty"`
}

// Snapshot captures registry, collector and flight-recorder state
// together.
func (o *Observability) Snapshot() BundleSnapshot {
	var b BundleSnapshot
	if o == nil {
		b.Operations = map[string]OpStats{}
		return b
	}
	b.Metrics = o.Registry.Snapshot()
	b.Operations = o.Collector.Operations()
	b.Spans = o.Collector.Snapshot()
	if o.Flight != nil {
		fs := o.Flight.Snapshot(0)
		b.Flight = &fs
	}
	return b
}

// SnapshotJSON renders the full bundle snapshot as indented JSON.
func (o *Observability) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(o.Snapshot(), "", "  ")
}
