package obs

import (
	"context"
	"testing"
)

// The disabled paths are contracts, not accidents: code threaded with
// tracing hooks must cost nothing when tracing is off (nil tracer, nil
// span) and nothing on a server receiving an explicitly unsampled
// traceparent. These gates pin that.

func TestTracingOffPathAllocFree(t *testing.T) {
	ctx := context.Background()
	if avg := testing.AllocsPerRun(200, func() {
		ctx2, sp := StartChild(ctx, "wire.send")
		sp.SetOperation("echo")
		sp.RecordError(nil)
		sp.End()
		_ = ctx2
	}); avg != 0 {
		t.Fatalf("StartChild without a span allocates %.1f/op, want 0", avg)
	}
	var tr *Tracer
	if avg := testing.AllocsPerRun(200, func() {
		_, sp := tr.StartSpan(ctx, "client.call")
		sp.End()
	}); avg != 0 {
		t.Fatalf("nil tracer StartSpan allocates %.1f/op, want 0", avg)
	}
}

func TestUnsampledInboundAllocFree(t *testing.T) {
	tr := NewTracer(NewCollector(0))
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: false}
	if avg := testing.AllocsPerRun(200, func() {
		sp := tr.StartRemote(parent, "server.dispatch")
		if sp != nil {
			t.Fatal("unsampled inbound context minted a span")
		}
		sp.SetOperation("echo")
		sp.SetAttr("peer", "127.0.0.1")
		sp.End()
	}); avg != 0 {
		t.Fatalf("unsampled inbound path allocates %.1f/op, want 0", avg)
	}
}

func BenchmarkStartChildTracingOff(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartChild(ctx, "wire.send")
		sp.End()
	}
}

func BenchmarkStartRemoteUnsampled(b *testing.B) {
	tr := NewTracer(NewCollector(0))
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: false}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRemote(parent, "server.dispatch")
		sp.End()
	}
}
