package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives a WindowCounter deterministically.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) now() int64               { return c.sec.Load() }
func (c *fakeClock) advance(n int64)          { c.sec.Add(n) }
func (c *fakeClock) set(sec int64)            { c.sec.Store(sec) }
func (c *fakeClock) install(w *WindowCounter) { w.now = c.now }

func TestWindowCounterSumWindows(t *testing.T) {
	w := NewWindowCounter(10 * time.Second)
	clk := &fakeClock{}
	clk.set(1000)
	clk.install(w)

	// Three seconds of traffic: 5, 3, 2 events.
	w.Add(5)
	clk.advance(1)
	w.Add(3)
	clk.advance(1)
	w.Add(2)

	if got := w.Sum(1 * time.Second); got != 2 {
		t.Fatalf("Sum(1s) = %d, want 2", got)
	}
	if got := w.Sum(2 * time.Second); got != 5 {
		t.Fatalf("Sum(2s) = %d, want 5", got)
	}
	if got := w.Sum(5 * time.Second); got != 10 {
		t.Fatalf("Sum(5s) = %d, want 10", got)
	}
}

func TestWindowCounterExpiry(t *testing.T) {
	w := NewWindowCounter(5 * time.Second)
	clk := &fakeClock{}
	clk.set(2000)
	clk.install(w)

	w.Add(7)
	if got := w.Sum(5 * time.Second); got != 7 {
		t.Fatalf("Sum before expiry = %d, want 7", got)
	}
	// Step past the window: the old cell's epoch no longer matches any
	// second the read walks, so it must not be counted.
	clk.advance(6)
	if got := w.Sum(5 * time.Second); got != 0 {
		t.Fatalf("Sum after expiry = %d, want 0", got)
	}
	// The ring wraps onto the stale cell and rotation resets it.
	w.Add(4)
	if got := w.Sum(1 * time.Second); got != 4 {
		t.Fatalf("Sum after wrap = %d, want 4", got)
	}
}

func TestWindowCounterWrapReuse(t *testing.T) {
	w := NewWindowCounter(3 * time.Second) // 4 cells
	clk := &fakeClock{}
	clk.set(3000)
	clk.install(w)

	for i := 0; i < 12; i++ {
		if i > 0 {
			clk.advance(1)
		}
		w.Add(1)
	}
	// After 12 one-per-second adds, only the last ring-worth survive.
	if got := w.Sum(3 * time.Second); got != 3 {
		t.Fatalf("Sum(3s) after wrap = %d, want 3", got)
	}
}

func TestWindowCounterRate(t *testing.T) {
	w := NewWindowCounter(10 * time.Second)
	clk := &fakeClock{}
	clk.set(4000)
	clk.install(w)
	for i := 0; i < 5; i++ {
		if i > 0 {
			clk.advance(1)
		}
		w.Add(10)
	}
	if got := w.Rate(5 * time.Second); got != 10 {
		t.Fatalf("Rate(5s) = %g, want 10", got)
	}
}

func TestWindowCounterNilSafe(t *testing.T) {
	var w *WindowCounter
	w.Add(1)
	w.Inc()
	if w.Sum(time.Minute) != 0 || w.Rate(time.Minute) != 0 {
		t.Fatal("nil WindowCounter must read zero")
	}
}

func TestWindowCounterClamp(t *testing.T) {
	w := NewWindowCounter(0) // takes MaxWindow
	if len(w.cells) != int(MaxWindow/time.Second)+1 {
		t.Fatalf("default ring size = %d", len(w.cells))
	}
	clk := &fakeClock{}
	clk.set(5000)
	clk.install(w)
	w.Add(3)
	// A window longer than the ring is clamped, not a panic.
	if got := w.Sum(time.Hour); got != 3 {
		t.Fatalf("Sum(clamped) = %d, want 3", got)
	}
}

func TestWindowCounterConcurrent(t *testing.T) {
	w := NewWindowCounter(10 * time.Second)
	clk := &fakeClock{}
	clk.set(6000)
	clk.install(w)

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Inc()
				if i%100 == 0 {
					clk.advance(1) // rotate under contention
				}
			}
		}()
	}
	wg.Wait()
	// Rotation may discard increments that race a second boundary (a
	// stale adder drops its event by design), so assert the invariant
	// rather than an exact total: never more than recorded, and the
	// final seconds hold the bulk of the traffic.
	total := w.Sum(10 * time.Second)
	if total > goroutines*perG {
		t.Fatalf("Sum exceeds events recorded: %d > %d", total, goroutines*perG)
	}
	if total == 0 {
		t.Fatal("Sum = 0 after concurrent adds")
	}
}
