package obs

import (
	"testing"
	"time"
)

func sampleSummaries(n int) []SpanSummary {
	sums := make([]SpanSummary, n)
	for i := range sums {
		sums[i] = SpanSummary{
			SpanID:        newSpanID(),
			ParentID:      newSpanID(),
			RemoteParent:  i == 0,
			Name:          "server.dispatch",
			Operation:     "echo",
			StartUnixNano: time.Now().UnixNano(),
			DurationNano:  int64(i+1) * 1000,
		}
	}
	return sums
}

func TestTraceReturnRoundTrip(t *testing.T) {
	trace := newTraceID()
	sums := sampleSummaries(3)
	sums[1].Err = "BAD_OPERATION"
	payload := EncodeTraceReturn(trace, sums, 0)
	if payload == nil {
		t.Fatal("encode returned nil for an in-budget set")
	}
	recs, err := DecodeTraceReturn(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d spans, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.TraceID != trace.String() {
			t.Fatalf("span %d trace %s, want %s", i, rec.TraceID, trace)
		}
		if rec.SpanID != sums[i].SpanID.String() {
			t.Fatalf("span %d id %s, want %s", i, rec.SpanID, sums[i].SpanID)
		}
		if rec.ParentID != sums[i].ParentID.String() {
			t.Fatalf("span %d parent %s, want %s", i, rec.ParentID, sums[i].ParentID)
		}
		if rec.Name != "server.dispatch" || rec.Operation != "echo" {
			t.Fatalf("span %d name/op = %q/%q", i, rec.Name, rec.Operation)
		}
		if rec.Duration != time.Duration(sums[i].DurationNano) {
			t.Fatalf("span %d duration %v", i, rec.Duration)
		}
		if rec.RemoteParent != (i == 0) {
			t.Fatalf("span %d remoteParent = %v", i, rec.RemoteParent)
		}
	}
	if recs[1].Err != "BAD_OPERATION" {
		t.Fatalf("span 1 err = %q", recs[1].Err)
	}
	if recs[0].Start.UnixNano() != sums[0].StartUnixNano {
		t.Fatalf("span 0 start %d, want %d", recs[0].Start.UnixNano(), sums[0].StartUnixNano)
	}
}

func TestTraceReturnBudgetTrimsTail(t *testing.T) {
	trace := newTraceID()
	sums := sampleSummaries(8)
	full := EncodeTraceReturn(trace, sums, 4096)
	one := EncodeTraceReturn(trace, sums[:1], 4096)
	// A budget that fits one span but not eight must trim, not fail.
	payload := EncodeTraceReturn(trace, sums, len(one)+4)
	if payload == nil {
		t.Fatalf("encode returned nil with budget for one span (full %d, one %d)", len(full), len(one))
	}
	recs, err := DecodeTraceReturn(payload)
	if err != nil {
		t.Fatalf("decode trimmed payload: %v", err)
	}
	if len(recs) == 0 || len(recs) >= 8 {
		t.Fatalf("trimmed to %d spans, want 1..7", len(recs))
	}
	// A budget below any single span yields nil: the reply just carries
	// no trace-return context.
	if got := EncodeTraceReturn(trace, sums, 8); got != nil {
		t.Fatalf("hopeless budget returned %d bytes, want nil", len(got))
	}
}

func TestTraceReturnDecodeRejectsGarbage(t *testing.T) {
	trace := newTraceID()
	payload := EncodeTraceReturn(trace, sampleSummaries(2), 0)
	cases := map[string][]byte{
		"empty":       {},
		"bad version": append([]byte{99}, payload[1:]...),
		"truncated":   payload[:len(payload)/2],
	}
	for name, data := range cases {
		if _, err := DecodeTraceReturn(data); err == nil {
			t.Fatalf("%s: decode accepted malformed payload", name)
		}
	}
}

func TestSpanCaptureReturnPayload(t *testing.T) {
	tr := NewTracer(NewCollector(0))
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	root := tr.StartRemote(parent, "server.dispatch")
	root.CaptureReturn()
	child := root.Child("server.servant")
	child.End()
	if root.ReturnPayload() == nil {
		t.Fatal("payload nil before root end — child summary missing")
	}
	root.End()
	payload := root.ReturnPayload()
	if payload == nil {
		t.Fatal("payload nil after root end")
	}
	recs, err := DecodeTraceReturn(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("captured %d spans, want 2 (servant + dispatch)", len(recs))
	}
	for _, rec := range recs {
		if rec.TraceID != parent.TraceID.String() {
			t.Fatalf("captured span in trace %s, want %s", rec.TraceID, parent.TraceID)
		}
	}
	// Unarmed spans return nothing.
	plain := tr.StartRemote(parent, "server.dispatch")
	plain.End()
	if plain.ReturnPayload() != nil {
		t.Fatal("unarmed span produced a payload")
	}
}
