package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanRecord is one finished span as stored by the collector and
// rendered by the /trace endpoint.
type SpanRecord struct {
	TraceID      string        `json:"trace_id"`
	SpanID       string        `json:"span_id"`
	ParentID     string        `json:"parent_id,omitempty"`
	RemoteParent bool          `json:"remote_parent,omitempty"`
	Name         string        `json:"name"`
	Operation    string        `json:"operation,omitempty"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	Err          string        `json:"error,omitempty"`
	Attrs        []Attr        `json:"attrs,omitempty"`
	Events       []Event       `json:"events,omitempty"`
}

// aggKey names one per-operation aggregation bucket: the stage name,
// qualified by the application operation when the span carries one.
func (r *SpanRecord) aggKey() string {
	if r.Operation == "" {
		return r.Name
	}
	return r.Name + ":" + r.Operation
}

// OpStats aggregates the spans of one stage/operation pair.
type OpStats struct {
	Count  uint64        `json:"count"`
	Errors uint64        `json:"errors"`
	Total  time.Duration `json:"total_ns"`
	Min    time.Duration `json:"min_ns"`
	Max    time.Duration `json:"max_ns"`
}

// Collector stores finished spans in a bounded ring (oldest spans are
// overwritten) and keeps a running per-operation aggregation that
// survives ring wrap-around.
type Collector struct {
	mu     sync.Mutex
	ring   []SpanRecord
	next   int
	filled bool
	total  uint64
	perOp  map[string]*OpStats
}

// DefaultSpanCapacity bounds the ring when NewCollector is given a
// non-positive capacity.
const DefaultSpanCapacity = 2048

// NewCollector constructs a collector retaining up to capacity spans.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Collector{ring: make([]SpanRecord, capacity), perOp: make(map[string]*OpStats)}
}

// record stores one finished span (called from Span.End).
func (c *Collector) record(r SpanRecord) {
	c.mu.Lock()
	c.ring[c.next] = r
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.filled = true
	}
	c.total++
	key := r.aggKey()
	agg, ok := c.perOp[key]
	if !ok {
		agg = &OpStats{Min: r.Duration, Max: r.Duration}
		c.perOp[key] = agg
	}
	agg.Count++
	if r.Err != "" {
		agg.Errors++
	}
	agg.Total += r.Duration
	if r.Duration < agg.Min {
		agg.Min = r.Duration
	}
	if r.Duration > agg.Max {
		agg.Max = r.Duration
	}
	c.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (c *Collector) Snapshot() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.filled {
		return append([]SpanRecord(nil), c.ring[:c.next]...)
	}
	out := make([]SpanRecord, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	return append(out, c.ring[:c.next]...)
}

// Trace returns the retained spans of one trace, ordered by start time.
func (c *Collector) Trace(traceID string) []SpanRecord {
	spans := c.Snapshot()
	out := spans[:0]
	for _, s := range spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Operations snapshots the per-operation aggregation.
func (c *Collector) Operations() map[string]OpStats {
	out := make(map[string]OpStats)
	if c == nil {
		return out
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.perOp {
		out[k] = *v
	}
	return out
}

// TotalRecorded counts all spans ever recorded, including those the ring
// has since overwritten.
func (c *Collector) TotalRecorded() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Reset drops retained spans and aggregations.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next = 0
	c.filled = false
	c.total = 0
	c.perOp = make(map[string]*OpStats)
	for i := range c.ring {
		c.ring[i] = SpanRecord{}
	}
}
