package obs

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestFlightRingWrapAndSeq(t *testing.T) {
	f := NewFlightRecorder(4, 2, 8)
	for i := 0; i < 10; i++ {
		f.Record(FlightRecord{Operation: "op" + strconv.Itoa(i)})
	}
	if got := f.TotalRecorded(); got != 10 {
		t.Fatalf("TotalRecorded = %d, want 10", got)
	}
	recs := f.Records(0)
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want capacity 4", len(recs))
	}
	// Oldest first: the ring holds the newest 4 of 10.
	for i, r := range recs {
		want := "op" + strconv.Itoa(6+i)
		if r.Operation != want {
			t.Errorf("record %d: op %q, want %q", i, r.Operation, want)
		}
		if r.Seq != uint64(7+i) {
			t.Errorf("record %d: seq %d, want %d", i, r.Seq, 7+i)
		}
	}
	if got := f.Records(2); len(got) != 2 || got[1].Operation != "op9" {
		t.Fatalf("Records(2) = %+v, want newest two ending op9", got)
	}
}

func TestFlightTriggerFreezesTail(t *testing.T) {
	f := NewFlightRecorder(8, 3, 4)
	f.SetDumpCooldown(0)
	for i := 0; i < 5; i++ {
		f.Record(FlightRecord{Operation: "call" + strconv.Itoa(i)})
	}
	id := f.Trigger(AnomalyRetryExhausted, FlightRecord{
		Operation: "call4", Attempts: 3, BreakerState: "Closed",
	})
	if id == "" {
		t.Fatal("Trigger returned empty id")
	}
	d, ok := f.Dump(id)
	if !ok {
		t.Fatalf("Dump(%q) not found", id)
	}
	if d.Kind != AnomalyRetryExhausted {
		t.Errorf("dump kind %q", d.Kind)
	}
	if d.Trigger.Anomaly != AnomalyRetryExhausted {
		t.Errorf("trigger record not stamped with anomaly: %+v", d.Trigger)
	}
	if d.Trigger.Attempts != 3 || d.Trigger.BreakerState != "Closed" {
		t.Errorf("trigger forensic fields lost: %+v", d.Trigger)
	}
	if d.Trigger.At.IsZero() {
		t.Error("trigger At not defaulted")
	}
	if len(d.Records) != 3 {
		t.Fatalf("dump froze %d records, want snapshot depth 3", len(d.Records))
	}
	if d.Records[2].Operation != "call4" {
		t.Errorf("dump tail should end at newest record, got %q", d.Records[2].Operation)
	}
	// The dump is immutable: later records must not leak into it.
	f.Record(FlightRecord{Operation: "later"})
	d2, _ := f.Dump(id)
	if d2.Records[2].Operation != "call4" {
		t.Error("dump records changed after later Record")
	}
}

func TestFlightDumpCooldownAndEviction(t *testing.T) {
	f := NewFlightRecorder(8, 2, 2)
	f.SetDumpCooldown(time.Hour)
	first := f.Trigger(AnomalyBreakerOpen, FlightRecord{Operation: "(breaker)"})
	if first == "" {
		t.Fatal("first trigger suppressed")
	}
	if again := f.Trigger(AnomalyBreakerOpen, FlightRecord{Operation: "(breaker)"}); again != "" {
		t.Fatalf("same-kind trigger within cooldown not suppressed: %q", again)
	}
	// A different kind has its own cooldown clock.
	if other := f.Trigger(AnomalyDeadlineMiss, FlightRecord{Operation: "x"}); other == "" {
		t.Fatal("different-kind trigger suppressed by foreign cooldown")
	}
	// Disabling the cooldown lets dumps through; maxDumps=2 evicts oldest.
	f.SetDumpCooldown(0)
	third := f.Trigger(AnomalyBreakerOpen, FlightRecord{Operation: "(breaker)"})
	sums := f.Dumps()
	if len(sums) != 2 {
		t.Fatalf("retained %d dumps, want maxDumps 2", len(sums))
	}
	if _, ok := f.Dump(first); ok {
		t.Error("oldest dump not evicted")
	}
	if _, ok := f.Dump(third); !ok {
		t.Error("newest dump missing")
	}
}

func TestFlightSnapshotAndUnknownDump(t *testing.T) {
	f := NewFlightRecorder(4, 2, 4)
	f.SetDumpCooldown(0)
	f.Record(FlightRecord{Operation: "a", Outcome: "ok"})
	f.Trigger(AnomalyQoSViolation, FlightRecord{Operation: "a"})
	s := f.Snapshot(0)
	if s.Total != 1 || len(s.Records) != 1 || len(s.Dumps) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if _, ok := f.Dump("no-such-id"); ok {
		t.Error("unknown dump id found")
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.SetDumpCooldown(time.Second)
	f.Record(FlightRecord{Operation: "x"})
	if id := f.Trigger(AnomalyRetryExhausted, FlightRecord{}); id != "" {
		t.Errorf("nil Trigger returned id %q", id)
	}
	if r := f.Records(5); r != nil {
		t.Errorf("nil Records = %v", r)
	}
	if _, ok := f.Dump("x"); ok {
		t.Error("nil Dump found something")
	}
	if d := f.Dumps(); d != nil {
		t.Errorf("nil Dumps = %v", d)
	}
	if n := f.TotalRecorded(); n != 0 {
		t.Errorf("nil TotalRecorded = %d", n)
	}
	s := f.Snapshot(0)
	if s.Total != 0 || s.Dumps == nil || s.Records == nil {
		t.Errorf("nil Snapshot = %+v (slices must be non-nil for JSON)", s)
	}
}

func TestFlightConcurrentUse(t *testing.T) {
	f := NewFlightRecorder(64, 8, 8)
	f.SetDumpCooldown(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Record(FlightRecord{Operation: "g" + strconv.Itoa(g)})
				if i%50 == 0 {
					f.Trigger(AnomalyDeadlineMiss, FlightRecord{Operation: "g" + strconv.Itoa(g)})
					f.Records(4)
					f.Snapshot(4)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := f.TotalRecorded(); got != 8*200 {
		t.Fatalf("TotalRecorded = %d, want %d", got, 8*200)
	}
}

// TestFlightDumpEvictionKindAware floods the retained set with one
// anomaly kind and asserts a rare kind's single dump survives: eviction
// takes the oldest dump of the most numerous kind, not the globally
// oldest.
func TestFlightDumpEvictionKindAware(t *testing.T) {
	f := NewFlightRecorder(8, 2, 4)
	f.SetDumpCooldown(0)
	rare := f.Trigger(AnomalySLOBurn, FlightRecord{Operation: "(slo)"})
	if rare == "" {
		t.Fatal("rare trigger suppressed")
	}
	var flood []string
	for i := 0; i < 6; i++ {
		flood = append(flood, f.Trigger(AnomalyQoSViolation, FlightRecord{Operation: "echo"}))
	}
	if _, ok := f.Dump(rare); !ok {
		t.Fatalf("rare %s dump evicted by a %s flood", AnomalySLOBurn, AnomalyQoSViolation)
	}
	sums := f.Dumps()
	if len(sums) != 4 {
		t.Fatalf("retained %d dumps, want maxDumps 4", len(sums))
	}
	// The flood's newest dumps are retained, its oldest evicted.
	if _, ok := f.Dump(flood[len(flood)-1]); !ok {
		t.Error("newest flood dump missing")
	}
	if _, ok := f.Dump(flood[0]); ok {
		t.Error("oldest flood dump not evicted")
	}
}
