package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero-value methods on
// a nil *Counter are no-ops, so callers holding an instrument from an
// absent registry need no branching.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (live bindings, loaded
// modules, queue depths). Nil-safe like Counter.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed histogram bounds (seconds) used for
// round-trip and dispatch latency when no explicit bounds are given. They
// span in-memory netsim calls (tens of microseconds) up to WAN timeouts.
var DefaultLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5,
}

// Histogram is a fixed-bucket latency histogram. Observations are single
// atomic increments (bucket + count + sum); bounds are immutable after
// construction. Nil-safe like Counter.
type Histogram struct {
	name     string
	bounds   []float64 // upper bounds in seconds, ascending
	buckets  []atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
	// exemplars retains, per bucket, the most recent traced observation:
	// the forensic link from a histogram tail to its flight record. The
	// slice parallels buckets; each slot swaps a whole *Exemplar so
	// readers never see a torn record.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one bucket observation to the trace that produced it,
// so a p99 outlier on /metrics resolves to a span and a flight record.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id,omitempty"`
	// Value is the observed latency in seconds.
	Value float64 `json:"value"`
	// At is when the observation was made.
	At time.Time `json:"at"`
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[h.bucketIdx(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// retains {traceID, spanID, value} as the bucket's exemplar. Untraced
// observations degrade to a plain Observe.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID, spanID string) {
	if h == nil {
		return
	}
	i := h.bucketIdx(d)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	if traceID != "" && i < len(h.exemplars) {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, SpanID: spanID, Value: d.Seconds(), At: time.Now()})
	}
}

// bucketIdx finds the bucket for one observation.
func (h *Histogram) bucketIdx(d time.Duration) int {
	secs := d.Seconds()
	// Linear scan beats binary search for <=16 buckets and branch
	// predicts well since most observations land in the early buckets.
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	return i
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the inclusive upper bound in seconds; the overflow
	// bucket carries the infBound sentinel and renders as "+Inf" in both
	// the text exposition and JSON (as a string), so JSON consumers see
	// every bucket and can compute totals.
	UpperBound float64 `json:"le"`
	// Count is cumulative: observations less than or equal to UpperBound.
	Count uint64 `json:"count"`
	// Exemplar is the most recent traced observation that landed in this
	// bucket's raw (non-cumulative) range, if any.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// bucketCountJSON is the wire shape of BucketCount: le is a string so
// the overflow bucket can say "+Inf" (encoding/json rejects IEEE
// infinities as numbers).
type bucketCountJSON struct {
	UpperBound string    `json:"le"`
	Count      uint64    `json:"count"`
	Exemplar   *Exemplar `json:"exemplar,omitempty"`
}

// MarshalJSON renders the overflow bucket's bound as "+Inf" instead of
// the internal sentinel, keeping every bucket — including overflow —
// present and meaningful in JSON exports.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if b.UpperBound != infBound {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketCountJSON{UpperBound: le, Count: b.Count, Exemplar: b.Exemplar})
}

// UnmarshalJSON accepts the string-bound wire shape produced by
// MarshalJSON, mapping "+Inf" back to the internal sentinel.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var w bucketCountJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.UpperBound == "+Inf" {
		b.UpperBound = infBound
	} else {
		v, err := strconv.ParseFloat(w.UpperBound, 64)
		if err != nil {
			return fmt.Errorf("bucket le %q: %w", w.UpperBound, err)
		}
		b.UpperBound = v
	}
	b.Count = w.Count
	b.Exemplar = w.Exemplar
	return nil
}

// HistogramSnapshot is a consistent-enough view of one histogram (buckets
// are read without a global lock; totals may trail by an observation).
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum_seconds"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot captures the registry's state for export.
type Snapshot struct {
	Counters map[string]uint64 `json:"counters"`
	Gauges   map[string]int64  `json:"gauges"`
	// Floats are callback-backed floating-point series (FloatFunc) —
	// cumulative seconds and similar fractional totals that fit neither
	// integer family.
	Floats     map[string]float64  `json:"floats,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Registry is the process-wide metrics registry. Instruments are created
// on first use and live forever; the hot path (instrument updates) is
// lock-free, and instrument lookup uses sync.Map so steady-state reads
// take no lock either.
type Registry struct {
	counters     sync.Map // string -> *Counter
	gauges       sync.Map // string -> *Gauge
	histograms   sync.Map // string -> *Histogram
	counterFuncs sync.Map // string -> func() uint64
	gaugeFuncs   sync.Map // string -> func() int64
	floatFuncs   sync.Map // string -> func() float64
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil, which is a valid no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{name: name})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{name: name})
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it with the given
// bounds (DefaultLatencyBuckets when bounds is nil) on first use. Bounds
// of an existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		name:      name,
		bounds:    append([]float64(nil), bounds...),
		buckets:   make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	v, _ := r.histograms.LoadOrStore(name, h)
	return v.(*Histogram)
}

// CounterFunc registers a callback-backed counter: fn is evaluated at
// snapshot time. This lets packages that keep their own atomics (and
// must not import obs — cdr, giop) surface them without a copy loop.
// Re-registering a name replaces the callback. No-op on a nil registry
// or nil fn.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.counterFuncs.Store(name, fn)
}

// GaugeFunc registers a callback-backed gauge, evaluated at snapshot
// time like CounterFunc.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.gaugeFuncs.Store(name, fn)
}

// FloatFunc registers a callback-backed floating-point series, evaluated
// at snapshot time like CounterFunc. It carries fractional cumulative
// values — GC pause seconds, CPU seconds — that would truncate in the
// integer counter family.
func (r *Registry) FloatFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.floatFuncs.Store(name, fn)
}

// Snapshot captures all instruments.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]int64{}}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.counterFuncs.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(func() uint64)()
		return true
	})
	r.gaugeFuncs.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(func() int64)()
		return true
	})
	r.floatFuncs.Range(func(k, v any) bool {
		if s.Floats == nil {
			s.Floats = map[string]float64{}
		}
		s.Floats[k.(string)] = v.(func() float64)()
		return true
	})
	r.histograms.Range(func(_, v any) bool {
		h := v.(*Histogram)
		hs := HistogramSnapshot{
			Name:    h.name,
			Count:   h.count.Load(),
			Sum:     time.Duration(h.sumNanos.Load()).Seconds(),
			Buckets: make([]BucketCount, 0, len(h.bounds)+1),
		}
		var cum uint64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			bound := infBound
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			bc := BucketCount{UpperBound: bound, Count: cum}
			if i < len(h.exemplars) {
				bc.Exemplar = h.exemplars[i].Load()
			}
			hs.Buckets = append(hs.Buckets, bc)
		}
		s.Histograms = append(s.Histograms, hs)
		return true
	})
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// infBound stands in for +Inf in snapshots so the JSON encoding stays
// valid (encoding/json rejects IEEE infinities).
const infBound = float64(1 << 62)

// WriteText renders the snapshot in a Prometheus-style text exposition.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Floats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", n, s.Floats[n]); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		// Histogram names may carry labels ("name{op=\"echo\"}"): the
		// suffix and the le label splice inside the existing brace set so
		// the exposition stays well-formed.
		base, labels := splitLabels(h.Name)
		for _, b := range h.Buckets {
			le := "+Inf"
			if b.UpperBound != infBound {
				le = fmt.Sprintf("%g", b.UpperBound)
			}
			all := fmt.Sprintf("le=%q", le)
			if labels != "" {
				all = labels + "," + all
			}
			// Exemplared buckets carry an OpenMetrics-style trailer:
			// `# {trace_id="...",span_id="..."} <seconds> <unix>` — the
			// forensic link from a tail bucket to its flight record.
			ex := ""
			if b.Exemplar != nil {
				ex = fmt.Sprintf(" # {trace_id=%q,span_id=%q} %g %.3f",
					b.Exemplar.TraceID, b.Exemplar.SpanID, b.Exemplar.Value,
					float64(b.Exemplar.At.UnixMilli())/1000)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d%s\n", base, all, b.Count, ex); err != nil {
				return err
			}
		}
		sumName, countName := base+"_sum", base+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %g\n%s %d\n", sumName, h.Sum, countName, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// splitLabels separates a metric name from its inline label set:
// `name{op="echo"}` → (`name`, `op="echo"`); names without labels come
// back unchanged with empty labels.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
