package obs

import (
	"fmt"
	"sync"
	"time"
)

// Anomaly kinds recognised by the flight recorder. Instrumented layers
// pass one of these to FlightRecorder.Trigger when an invocation crosses
// a failure boundary worth freezing evidence for.
const (
	// AnomalyRetryExhausted marks an invocation that failed at the
	// transport level on its last permitted attempt.
	AnomalyRetryExhausted = "retry-exhausted"
	// AnomalyBreakerOpen marks a circuit breaker opening for an endpoint.
	AnomalyBreakerOpen = "breaker-open"
	// AnomalyDeadlineMiss marks an invocation that blew its deadline
	// budget (context deadline or TIMEOUT exception).
	AnomalyDeadlineMiss = "deadline-miss"
	// AnomalyQoSViolation marks an observation outside the bounds the
	// QoS contract negotiated (see qos.ConformanceObserver).
	AnomalyQoSViolation = "qos-violation"
	// AnomalyDegradeStep marks the QoS degradation ladder stepping down.
	AnomalyDegradeStep = "qos-degrade"
	// AnomalyOverloadShed marks sustained server-side admission shedding:
	// a dispatch class dropping requests faster than the shed-storm
	// threshold (see orb's admission control).
	AnomalyOverloadShed = "overload-shed"
	// AnomalySLOBurn marks an SLO error budget burning faster than the
	// critical burn-rate threshold on both the fast and slow windows
	// (see qos.SLOEngine).
	AnomalySLOBurn = "slo-burn"
)

// PhaseTimings decomposes one invocation's latency into pipeline
// phases, so a record (or a burn dump) says where the budget went.
// Client records carry the encode phase; server-side shed and dispatch
// records carry the queue/dispatch/servant/reply phases. Zero fields
// mean the phase wasn't measured, not that it took no time.
type PhaseTimings struct {
	// EncodeNs is client-side request marshal + frame write time.
	EncodeNs int64 `json:"encode_ns,omitempty"`
	// QueueWaitNs is time spent in the bounded dispatch queue.
	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	// DispatchNs is server routing/filter/unmarshal overhead: dispatch
	// wall time minus the servant's own execution.
	DispatchNs int64 `json:"dispatch_ns,omitempty"`
	// ServantNs is the servant method's execution time.
	ServantNs int64 `json:"servant_ns,omitempty"`
	// ReplyWireNs is reply marshal + frame write time.
	ReplyWireNs int64 `json:"reply_wire_ns,omitempty"`
}

// FlightRecord is one completed invocation (or resilience event) as
// retained by the flight recorder: the minimal forensic state needed to
// reconstruct what the resilience and transport layers did to a call.
type FlightRecord struct {
	// Seq is the recorder-wide sequence number (monotonic, 1-based).
	Seq uint64 `json:"seq,omitempty"`
	// TraceID and SpanID link the record to the span collector when
	// tracing is on.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
	// Operation is the invoked operation ("(breaker)" and "(qos)" mark
	// synthetic records from resilience events rather than calls).
	Operation string `json:"operation"`
	// Binding names the QoS characteristic bound to the call, if any.
	Binding string `json:"binding,omitempty"`
	// Endpoint is the target address; Stripe the connection stripe slot
	// the request used (-1 when unknown, e.g. breaker-rejected).
	Endpoint string `json:"endpoint,omitempty"`
	Stripe   int    `json:"stripe"`
	// Attempts counts delivery attempts admitted for the call (0 when
	// the breaker rejected it outright).
	Attempts int `json:"attempts"`
	// BreakerState is the endpoint's breaker state at admission.
	BreakerState string `json:"breaker_state,omitempty"`
	// DeadlineBudget is the time remaining to the caller's deadline at
	// admission (0 when no deadline applied).
	DeadlineBudget time.Duration `json:"deadline_budget_ns,omitempty"`
	// Outcome labels the result: "ok", a system exception name, or a
	// context verdict ("deadline-exceeded", "canceled").
	Outcome string `json:"outcome"`
	// Anomaly is the anomaly kind the record triggered, if any.
	Anomaly string `json:"anomaly,omitempty"`
	// Latency is the wall time of the whole call including retries.
	Latency time.Duration `json:"latency_ns"`
	// Phases decomposes the latency into pipeline phases when the
	// instrumented layer measured them.
	Phases *PhaseTimings `json:"phases,omitempty"`
	// At is when the record was finalised.
	At time.Time `json:"at"`
}

// FlightDump is one frozen anomaly snapshot: the triggering record plus
// the tail of the ring at trigger time.
type FlightDump struct {
	ID      string         `json:"id"`
	Kind    string         `json:"kind"`
	At      time.Time      `json:"at"`
	Trigger FlightRecord   `json:"trigger"`
	Records []FlightRecord `json:"records"`
}

// FlightDumpSummary lists a retained dump without its records.
type FlightDumpSummary struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	At      time.Time `json:"at"`
	Records int       `json:"records"`
}

// FlightSnapshot is the /flight JSON export.
type FlightSnapshot struct {
	// Total counts all records ever made, including overwritten ones.
	Total uint64 `json:"total"`
	// Dumps summarises the retained anomaly dumps, oldest first.
	Dumps []FlightDumpSummary `json:"dumps"`
	// Records is the retained ring tail, oldest first.
	Records []FlightRecord `json:"records"`
}

// Flight recorder defaults.
const (
	DefaultFlightCapacity      = 512
	DefaultFlightSnapshotDepth = 32
	DefaultFlightMaxDumps      = 32
	// DefaultDumpCooldown suppresses same-kind dumps following each
	// other closer than this, so an anomaly storm (every call of an
	// outage exhausting its retries) yields a few spaced dumps instead
	// of churning the dump ring.
	DefaultDumpCooldown = 100 * time.Millisecond
)

// FlightRecorder is an always-on bounded ring of per-invocation records
// with anomaly-triggered snapshots. Recording is one short mutex hold
// and two struct copies — cheap enough to leave on in production, which
// is the point: when a breaker trips at 3am the evidence is already
// there. A nil *FlightRecorder is the disabled recorder; every method
// is a no-op on it.
type FlightRecorder struct {
	mu        sync.Mutex
	ring      []FlightRecord
	next      int
	filled    bool
	seq       uint64
	snapDepth int
	dumps     []*FlightDump // oldest first, bounded by maxDumps
	maxDumps  int
	dumpSeq   uint64
	cooldown  time.Duration
	lastDump  map[string]time.Time // per anomaly kind

	// hookMu guards hooks separately from mu: hooks run after Trigger
	// releases mu, so a hook may call back into the recorder.
	hookMu sync.Mutex
	hooks  []func(dumpID, kind, traceID string)
}

// OnDump registers a hook invoked (outside the recorder's lock, on the
// triggering goroutine) each time an anomaly freezes a new dump. The
// tail sampler uses it to pin the triggering trace; the profiler uses it
// to start an anomaly-triggered capture.
func (f *FlightRecorder) OnDump(hook func(dumpID, kind, traceID string)) {
	if f == nil || hook == nil {
		return
	}
	f.hookMu.Lock()
	f.hooks = append(f.hooks, hook)
	f.hookMu.Unlock()
}

// NewFlightRecorder constructs a recorder retaining up to capacity
// records, freezing snapshotDepth records per dump and keeping up to
// maxDumps dumps (non-positive arguments take the defaults).
func NewFlightRecorder(capacity, snapshotDepth, maxDumps int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	if snapshotDepth <= 0 {
		snapshotDepth = DefaultFlightSnapshotDepth
	}
	if snapshotDepth > capacity {
		snapshotDepth = capacity
	}
	if maxDumps <= 0 {
		maxDumps = DefaultFlightMaxDumps
	}
	return &FlightRecorder{
		ring:      make([]FlightRecord, capacity),
		snapDepth: snapshotDepth,
		maxDumps:  maxDumps,
		cooldown:  DefaultDumpCooldown,
		lastDump:  make(map[string]time.Time),
	}
}

// SetDumpCooldown bounds how often same-kind anomalies may freeze a new
// dump (0 disables the suppression; tests use that for determinism).
func (f *FlightRecorder) SetDumpCooldown(d time.Duration) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.cooldown = d
	f.mu.Unlock()
}

// Record appends one record to the ring, assigning its sequence number.
func (f *FlightRecorder) Record(r FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.seq++
	r.Seq = f.seq
	f.ring[f.next] = r
	f.next++
	if f.next == len(f.ring) {
		f.next = 0
		f.filled = true
	}
	f.mu.Unlock()
}

// Trigger freezes the last records plus the triggering record into a
// named dump and returns the dump id ("" when suppressed by the
// per-kind cooldown). The trigger record is stamped with the anomaly
// kind; it need not have been Recorded separately.
func (f *FlightRecorder) Trigger(kind string, trigger FlightRecord) string {
	if f == nil {
		return ""
	}
	now := time.Now()
	f.mu.Lock()
	if f.cooldown > 0 {
		if last, ok := f.lastDump[kind]; ok && now.Sub(last) < f.cooldown {
			f.mu.Unlock()
			return ""
		}
	}
	f.lastDump[kind] = now
	f.dumpSeq++
	trigger.Anomaly = kind
	if trigger.At.IsZero() {
		trigger.At = now
	}
	d := &FlightDump{
		ID:      fmt.Sprintf("%s-%d", kind, f.dumpSeq),
		Kind:    kind,
		At:      now,
		Trigger: trigger,
		Records: f.tailLocked(f.snapDepth),
	}
	f.dumps = append(f.dumps, d)
	if len(f.dumps) > f.maxDumps {
		f.evictLocked()
	}
	f.mu.Unlock()
	f.hookMu.Lock()
	hooks := f.hooks
	f.hookMu.Unlock()
	for _, hook := range hooks {
		hook(d.ID, kind, trigger.TraceID)
	}
	return d.ID
}

// evictLocked drops one dump to get back under maxDumps. Eviction is
// kind-aware: the oldest dump of the most numerous kind goes first, so
// a flood of one anomaly (a qos-violation storm, say) cannot wash a
// rare kind's only dump (an slo-burn, a breaker-open) out of the
// retained set.
func (f *FlightRecorder) evictLocked() {
	counts := make(map[string]int, 4)
	for _, d := range f.dumps {
		counts[d.Kind]++
	}
	victim, victimKind := 0, f.dumps[0].Kind
	for i, d := range f.dumps {
		if counts[d.Kind] > counts[victimKind] {
			victim, victimKind = i, d.Kind
		}
	}
	f.dumps = append(f.dumps[:victim], f.dumps[victim+1:]...)
}

// tailLocked copies the newest n retained records, oldest first.
func (f *FlightRecorder) tailLocked(n int) []FlightRecord {
	size := f.next
	if f.filled {
		size = len(f.ring)
	}
	if n > size {
		n = size
	}
	out := make([]FlightRecord, 0, n)
	for i := size - n; i < size; i++ {
		idx := i
		if f.filled {
			idx = (f.next + i) % len(f.ring)
		}
		out = append(out, f.ring[idx])
	}
	return out
}

// Records returns the newest limit retained records, oldest first
// (limit <= 0 returns all retained records).
func (f *FlightRecorder) Records(limit int) []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	size := f.next
	if f.filled {
		size = len(f.ring)
	}
	if limit <= 0 || limit > size {
		limit = size
	}
	return f.tailLocked(limit)
}

// Dump retrieves one retained dump by id.
func (f *FlightRecorder) Dump(id string) (*FlightDump, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range f.dumps {
		if d.ID == id {
			cp := *d
			cp.Records = append([]FlightRecord(nil), d.Records...)
			return &cp, true
		}
	}
	return nil, false
}

// Dumps summarises the retained dumps, oldest first.
func (f *FlightRecorder) Dumps() []FlightDumpSummary {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightDumpSummary, 0, len(f.dumps))
	for _, d := range f.dumps {
		out = append(out, FlightDumpSummary{ID: d.ID, Kind: d.Kind, At: d.At, Records: len(d.Records)})
	}
	return out
}

// TotalRecorded counts all records ever made, including overwritten.
func (f *FlightRecorder) TotalRecorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Snapshot exports the recorder state for the /flight endpoint; limit
// bounds the record tail (<= 0 returns every retained record).
func (f *FlightRecorder) Snapshot(limit int) FlightSnapshot {
	if f == nil {
		return FlightSnapshot{Dumps: []FlightDumpSummary{}, Records: []FlightRecord{}}
	}
	s := FlightSnapshot{
		Total:   f.TotalRecorded(),
		Dumps:   f.Dumps(),
		Records: f.Records(limit),
	}
	if s.Dumps == nil {
		s.Dumps = []FlightDumpSummary{}
	}
	if s.Records == nil {
		s.Records = []FlightRecord{}
	}
	return s
}
