package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ReadinessCheck reports whether one named subsystem is ready and a
// short human-readable detail either way.
type ReadinessCheck func() (ok bool, detail string)

// CheckResult is one readiness check's outcome in the /ready JSON.
type CheckResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ReadyReport is the /ready JSON body.
type ReadyReport struct {
	Ready  bool          `json:"ready"`
	Checks []CheckResult `json:"checks"`
}

// healthState holds the registered readiness checks. It lives behind a
// lazily-initialised pointer so bundles constructed with a struct
// literal (no call to New*) still support SetReadiness.
type healthState struct {
	mu     sync.Mutex
	checks map[string]ReadinessCheck
}

type lazyHealth struct {
	p atomic.Pointer[healthState]
}

func (l *lazyHealth) get() *healthState {
	if h := l.p.Load(); h != nil {
		return h
	}
	h := &healthState{checks: map[string]ReadinessCheck{}}
	if l.p.CompareAndSwap(nil, h) {
		return h
	}
	return l.p.Load()
}

// SetReadiness registers (or replaces) a named readiness check consulted
// by /ready. A nil check removes the name. No-op on a nil bundle.
func (o *Observability) SetReadiness(name string, check ReadinessCheck) {
	if o == nil {
		return
	}
	h := o.health.get()
	h.mu.Lock()
	if check == nil {
		delete(h.checks, name)
	} else {
		h.checks[name] = check
	}
	h.mu.Unlock()
}

// Ready runs every registered check and aggregates: ready iff all checks
// pass (a bundle with no checks is ready — liveness alone). Nil-safe.
func (o *Observability) Ready() ReadyReport {
	rep := ReadyReport{Ready: true, Checks: []CheckResult{}}
	if o == nil {
		return rep
	}
	h := o.health.get()
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for n := range h.checks {
		names = append(names, n)
	}
	checks := make([]ReadinessCheck, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		checks = append(checks, h.checks[n])
	}
	h.mu.Unlock()
	// Run checks outside the lock: they read foreign state (breaker
	// groups, gauges) and must not be able to deadlock registration.
	for i, n := range names {
		ok, detail := checks[i]()
		if !ok {
			rep.Ready = false
		}
		rep.Checks = append(rep.Checks, CheckResult{Name: n, OK: ok, Detail: detail})
	}
	return rep
}
