// Package obs is the observability layer of the MAQS reproduction: a
// lock-cheap metrics registry, distributed trace propagation in the W3C
// traceparent style, and an in-process span collector with bounded ring
// storage.
//
// Observability is itself a cross-cutting concern in the paper's sense
// (§3): it must see every stage of the invocation path — stub dispatch,
// mediator delegation, transport-chain modules, the wire, and the
// server-side prolog/servant/epilog bracket — without any of those
// stages knowing more than "there may be a span in my context". The
// package therefore exposes two deliberately small integration surfaces:
//
//   - a *Tracer whose StartSpan/StartRemote calls are nil-safe, so an
//     uninstrumented ORB pays one nil check per stage and nothing else;
//   - *Counter/*Gauge/*Histogram instruments that are resolved once and
//     then updated with single atomic operations.
//
// Trace context travels between processes inside a dedicated GIOP
// service context (giop.SCTrace) whose payload is the ASCII traceparent
// rendering of the sending span — see SpanContext.Traceparent and
// ParseTraceparent. The package depends only on the standard library so
// every layer of the stack (giop, orb, qos, transport) can import it
// without cycles.
package obs
