package obs

import (
	"encoding/hex"
	"math/rand/v2"
)

// TraceID identifies one end-to-end invocation across processes.
type TraceID [16]byte

// IsZero reports the invalid all-zero trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID identifies one stage within a trace.
type SpanID [8]byte

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the propagated part of a span: what travels inside the
// GIOP service context from caller to callee.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// traceparentLen is the length of a version-00 traceparent:
// "00-" + 32 + "-" + 16 + "-" + 2.
const traceparentLen = 55

// Traceparent renders the context in the W3C traceparent format,
// version 00: "00-<trace-id>-<parent-id>-<trace-flags>". The returned
// bytes are the payload of the giop.SCTrace service context.
func (sc SpanContext) Traceparent() []byte {
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, '-', '0')
	if sc.Sampled {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return b
}

// ParseTraceparent decodes a traceparent payload. It accepts any version
// whose field layout matches version 00 (per the W3C forward-compat
// rule: longer payloads with the same prefix layout are tolerated) and
// rejects malformed or all-zero IDs.
func ParseTraceparent(data []byte) (SpanContext, bool) {
	if len(data) < traceparentLen {
		return SpanContext{}, false
	}
	if data[2] != '-' || data[35] != '-' || data[52] != '-' {
		return SpanContext{}, false
	}
	if data[0] == 'f' && data[1] == 'f' { // version 0xff is forbidden
		return SpanContext{}, false
	}
	if len(data) > traceparentLen && data[traceparentLen] != '-' {
		return SpanContext{}, false
	}
	// The W3C grammar is lowercase hex throughout, version included
	// (hex.Decode alone would admit uppercase and skip the version).
	if !isLowerHex(data[0:2]) || !isLowerHex(data[3:35]) ||
		!isLowerHex(data[36:52]) || !isLowerHex(data[53:55]) {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], data[3:35]); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], data[36:52]); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], data[53:55]); err != nil {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isLowerHex reports whether b is entirely lowercase hex digits.
func isLowerHex(b []byte) bool {
	for _, c := range b {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newTraceID draws a random non-zero trace ID. math/rand/v2's global
// generator is lock-free per P, which keeps ID generation off the
// invocation path's contention profile.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(hi >> (8 * i))
			t[8+i] = byte(lo >> (8 * i))
		}
	}
	return t
}

// newSpanID draws a random non-zero span ID.
func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}
