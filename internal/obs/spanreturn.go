package obs

import (
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"maqs/internal/cdr"
)

// SCTraceReturn payload limits. The context rides on every traced reply,
// so it is bounded twice: at most maxReturnSpans summaries are captured,
// and the encoding must fit DefaultTraceReturnBudget bytes — over-budget
// spans are silently trimmed from the tail.
const (
	// DefaultTraceReturnBudget caps the encoded SCTraceReturn payload.
	DefaultTraceReturnBudget = 1024
	// maxReturnSpans caps how many span summaries one reply carries.
	maxReturnSpans = 16
	// traceReturnVersion is the payload's leading version octet.
	traceReturnVersion = 1
	// returnErrBudget truncates error strings in summaries.
	returnErrBudget = 120
)

// SpanSummary is the compact span form carried on SCTraceReturn: enough
// to graft the server's dispatch/servant/epilog spans into the client's
// trace tree, nothing more (no attrs, no events).
type SpanSummary struct {
	SpanID        SpanID
	ParentID      SpanID
	RemoteParent  bool
	Name          string
	Operation     string
	StartUnixNano int64
	DurationNano  int64
	Err           string
}

// returnCapture accumulates summaries of a server request's spans as
// they end. It is armed on the root dispatch span and inherited by its
// children, so the mutex sees every servant/prolog/epilog span.
type returnCapture struct {
	mu   sync.Mutex
	sums []SpanSummary
}

// add summarises one finished span into the capture, bounded by
// maxReturnSpans (later spans drop silently — the budget rules anyway).
func (rc *returnCapture) add(rec SpanRecord) {
	sum := SpanSummary{
		RemoteParent:  rec.RemoteParent,
		Name:          rec.Name,
		Operation:     rec.Operation,
		StartUnixNano: rec.Start.UnixNano(),
		DurationNano:  int64(rec.Duration),
		Err:           rec.Err,
	}
	if len(sum.Err) > returnErrBudget {
		sum.Err = sum.Err[:returnErrBudget]
	}
	if _, err := hex.Decode(sum.SpanID[:], []byte(rec.SpanID)); err != nil {
		return
	}
	if rec.ParentID != "" {
		if _, err := hex.Decode(sum.ParentID[:], []byte(rec.ParentID)); err != nil {
			return
		}
	}
	rc.mu.Lock()
	if len(rc.sums) < maxReturnSpans {
		rc.sums = append(rc.sums, sum)
	}
	rc.mu.Unlock()
}

// payload encodes the capture for the wire, nil when empty or when even
// a single summary cannot fit the budget.
func (rc *returnCapture) payload(trace TraceID) []byte {
	rc.mu.Lock()
	sums := make([]SpanSummary, len(rc.sums))
	copy(sums, rc.sums)
	rc.mu.Unlock()
	return EncodeTraceReturn(trace, sums, DefaultTraceReturnBudget)
}

// EncodeTraceReturn renders the SCTraceReturn payload: a CDR stream of
//
//	octet  version (1)
//	octets trace id (16)
//	ulong  span count
//	       per span: octets span id (8), octets parent id (8, zero for a
//	       local root), bool remote-parent, string name, string op,
//	       longlong start unix-nanos, longlong duration nanos, string err
//
// Summaries past the byte budget are trimmed from the tail; nil is
// returned when nothing fits (the reply then simply carries no context).
func EncodeTraceReturn(trace TraceID, sums []SpanSummary, budget int) []byte {
	if budget <= 0 {
		budget = DefaultTraceReturnBudget
	}
	if len(sums) > maxReturnSpans {
		sums = sums[:maxReturnSpans]
	}
	for n := len(sums); n > 0; n-- {
		e := cdr.NewEncoder(cdr.BigEndian)
		e.WriteOctet(traceReturnVersion)
		e.WriteOctets(trace[:])
		e.WriteULong(uint32(n))
		for i := 0; i < n; i++ {
			s := &sums[i]
			e.WriteOctets(s.SpanID[:])
			e.WriteOctets(s.ParentID[:])
			e.WriteBool(s.RemoteParent)
			e.WriteString(s.Name)
			e.WriteString(s.Operation)
			e.WriteLongLong(s.StartUnixNano)
			e.WriteLongLong(s.DurationNano)
			e.WriteString(s.Err)
		}
		if e.Len() <= budget {
			return e.Bytes()
		}
	}
	return nil
}

// DecodeTraceReturn parses an SCTraceReturn payload back into span
// records ready for Tracer.Inject (hex ids, absolute start times).
func DecodeTraceReturn(data []byte) ([]SpanRecord, error) {
	d := cdr.NewDecoder(data, cdr.BigEndian)
	version, err := d.ReadOctet()
	if err != nil {
		return nil, err
	}
	if version != traceReturnVersion {
		return nil, fmt.Errorf("trace return: unsupported version %d", version)
	}
	traceRaw, err := d.ReadOctets()
	if err != nil {
		return nil, err
	}
	var trace TraceID
	if len(traceRaw) != len(trace) {
		return nil, fmt.Errorf("trace return: trace id is %d bytes, want %d", len(traceRaw), len(trace))
	}
	copy(trace[:], traceRaw)
	count, err := d.ReadULong()
	if err != nil {
		return nil, err
	}
	if count > maxReturnSpans {
		return nil, fmt.Errorf("trace return: %d spans exceeds cap %d", count, maxReturnSpans)
	}
	recs := make([]SpanRecord, 0, count)
	for i := uint32(0); i < count; i++ {
		var span, parent SpanID
		raw, err := d.ReadOctets()
		if err != nil {
			return nil, err
		}
		if len(raw) != len(span) {
			return nil, fmt.Errorf("trace return: span id is %d bytes, want %d", len(raw), len(span))
		}
		copy(span[:], raw)
		if raw, err = d.ReadOctets(); err != nil {
			return nil, err
		}
		if len(raw) != len(parent) {
			return nil, fmt.Errorf("trace return: parent id is %d bytes, want %d", len(raw), len(parent))
		}
		copy(parent[:], raw)
		remote, err := d.ReadBool()
		if err != nil {
			return nil, err
		}
		name, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		op, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		startNs, err := d.ReadLongLong()
		if err != nil {
			return nil, err
		}
		durNs, err := d.ReadLongLong()
		if err != nil {
			return nil, err
		}
		errMsg, err := d.ReadString()
		if err != nil {
			return nil, err
		}
		rec := SpanRecord{
			TraceID:      trace.String(),
			SpanID:       span.String(),
			RemoteParent: remote,
			Name:         name,
			Operation:    op,
			Start:        time.Unix(0, startNs),
			Duration:     time.Duration(durNs),
			Err:          errMsg,
		}
		if !parent.IsZero() {
			rec.ParentID = parent.String()
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
