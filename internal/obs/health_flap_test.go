package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// TestReadinessFlap drives a readiness check through ok → failing → ok
// and asserts /ready tracks every transition while /health stays 200
// throughout: liveness is about the process, readiness about its
// dependencies.
func TestReadinessFlap(t *testing.T) {
	o := New()
	var healthy atomic.Bool
	healthy.Store(true)
	o.SetReadiness("flappy", func() (bool, string) {
		if healthy.Load() {
			return true, "all good"
		}
		return false, "dependency down"
	})
	h := o.Handler()

	readyCode := func() (int, ReadyReport) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ready", nil))
		var rep ReadyReport
		if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
			t.Fatalf("/ready JSON: %v", err)
		}
		return rec.Code, rep
	}
	healthCode := func() int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
		return rec.Code
	}

	for cycle := 0; cycle < 3; cycle++ {
		if code, rep := readyCode(); code != http.StatusOK || !rep.Ready {
			t.Fatalf("cycle %d up: /ready = %d %+v", cycle, code, rep)
		}
		if code := healthCode(); code != http.StatusOK {
			t.Fatalf("cycle %d up: /health = %d", cycle, code)
		}

		healthy.Store(false)
		code, rep := readyCode()
		if code != http.StatusServiceUnavailable || rep.Ready {
			t.Fatalf("cycle %d down: /ready = %d %+v", cycle, code, rep)
		}
		if len(rep.Checks) != 1 || rep.Checks[0].Name != "flappy" || rep.Checks[0].OK || rep.Checks[0].Detail != "dependency down" {
			t.Fatalf("cycle %d down: checks = %+v", cycle, rep.Checks)
		}
		// Liveness is unaffected by a failing dependency.
		if code := healthCode(); code != http.StatusOK {
			t.Fatalf("cycle %d down: /health = %d", cycle, code)
		}
		healthy.Store(true)
	}
}

// TestReadinessCheckRemoval confirms a flapping check can be retired:
// a nil check deregisters the name and readiness recovers immediately.
func TestReadinessCheckRemoval(t *testing.T) {
	o := New()
	o.SetReadiness("stuck", func() (bool, string) { return false, "never ready" })
	if rep := o.Ready(); rep.Ready {
		t.Fatal("expected not ready with failing check")
	}
	o.SetReadiness("stuck", nil)
	if rep := o.Ready(); !rep.Ready || len(rep.Checks) != 0 {
		t.Fatalf("after removal: %+v", rep)
	}
}
