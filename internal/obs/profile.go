package obs

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler defaults.
const (
	// DefaultProfileCPUDuration is how long an anomaly-triggered CPU
	// profile runs. Short on purpose: the interesting CPU state is the
	// one that coincides with the anomaly, not a leisurely average.
	DefaultProfileCPUDuration = 250 * time.Millisecond
	// DefaultProfileMaxCaptures bounds the retained capture set.
	DefaultProfileMaxCaptures = 8
)

// defaultProfileKinds are the anomaly kinds that trigger a capture when
// ProfilingConfig.Kinds is empty: the sustained-pressure anomalies where
// a CPU/heap snapshot explains the pressure (a single deadline miss or
// qos violation rarely does).
var defaultProfileKinds = []string{AnomalySLOBurn, AnomalyOverloadShed, AnomalyBreakerOpen}

// ProfilingConfig parameterises anomaly-triggered profiling.
type ProfilingConfig struct {
	// CPUDuration is the CPU profile window per capture
	// (DefaultProfileCPUDuration when non-positive).
	CPUDuration time.Duration
	// MaxCaptures bounds retained captures
	// (DefaultProfileMaxCaptures when non-positive).
	MaxCaptures int
	// Kinds lists the anomaly kinds that trigger a capture
	// (defaultProfileKinds when empty).
	Kinds []string
}

// ProfileCapture is one anomaly-triggered profile: a heap snapshot taken
// at trigger time plus a short CPU profile started at trigger time. It
// is keyed by the flight dump that triggered it, so /flight and
// /profile line up by ID.
type ProfileCapture struct {
	ID          string        `json:"id"`
	Kind        string        `json:"kind"`
	At          time.Time     `json:"at"`
	CPUDuration time.Duration `json:"cpu_duration_ns"`
	// Err records why a part of the capture failed (typically the CPU
	// profiler being busy with another capture or net/http/pprof).
	Err string `json:"err,omitempty"`
	// Done flips once the CPU window has closed (the heap part is
	// always complete immediately).
	Done bool   `json:"done"`
	CPU  []byte `json:"-"`
	Heap []byte `json:"-"`
}

// ProfileCaptureSummary lists a capture without its payload bytes.
type ProfileCaptureSummary struct {
	ID          string        `json:"id"`
	Kind        string        `json:"kind"`
	At          time.Time     `json:"at"`
	CPUDuration time.Duration `json:"cpu_duration_ns"`
	CPUBytes    int           `json:"cpu_bytes"`
	HeapBytes   int           `json:"heap_bytes"`
	Done        bool          `json:"done"`
	Err         string        `json:"err,omitempty"`
}

// Profiler retains a bounded, kind-aware-evicted set of anomaly-
// triggered profile captures. A nil *Profiler is disabled; every method
// no-ops. Only one CPU profile can run process-wide (a runtime/pprof
// constraint), so concurrent triggers keep their heap snapshot and
// record a busy error for the CPU part.
type Profiler struct {
	mu       sync.Mutex
	captures []*ProfileCapture // oldest first
	max      int
	cpuDur   time.Duration
	kinds    map[string]struct{}
	busy     atomic.Bool
	wg       sync.WaitGroup

	triggered *Counter
}

// NewProfiler constructs a profiler publishing its capture counter into
// reg (nil reg skips metrics).
func NewProfiler(reg *Registry, cfg ProfilingConfig) *Profiler {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = DefaultProfileCPUDuration
	}
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = DefaultProfileMaxCaptures
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = defaultProfileKinds
	}
	p := &Profiler{
		max:       cfg.MaxCaptures,
		cpuDur:    cfg.CPUDuration,
		kinds:     make(map[string]struct{}, len(kinds)),
		triggered: reg.Counter("maqs_profile_captures_total"),
	}
	for _, k := range kinds {
		p.kinds[k] = struct{}{}
	}
	return p
}

// OnAnomaly is the flight recorder dump hook: it starts a capture when
// the anomaly kind is one the profiler watches.
func (p *Profiler) OnAnomaly(dumpID, kind, _ string) {
	if p == nil {
		return
	}
	if _, ok := p.kinds[kind]; !ok {
		return
	}
	p.capture(dumpID, kind)
}

// capture snapshots the heap synchronously and runs the CPU window on a
// goroutine, retaining the capture under the dump's ID.
func (p *Profiler) capture(id, kind string) {
	c := &ProfileCapture{ID: id, Kind: kind, At: time.Now(), CPUDuration: p.cpuDur}
	var heap bytes.Buffer
	if prof := pprof.Lookup("heap"); prof != nil {
		if err := prof.WriteTo(&heap, 0); err != nil {
			c.Err = "heap: " + err.Error()
		} else {
			c.Heap = heap.Bytes()
		}
	}
	p.mu.Lock()
	p.captures = append(p.captures, c)
	if len(p.captures) > p.max {
		p.evictLocked()
	}
	p.mu.Unlock()
	p.triggered.Inc()
	if !p.busy.CompareAndSwap(false, true) {
		p.finish(c, nil, "cpu: profiler busy")
		return
	}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		p.busy.Store(false)
		p.finish(c, nil, "cpu: "+err.Error())
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		time.Sleep(p.cpuDur)
		pprof.StopCPUProfile()
		p.busy.Store(false)
		p.finish(c, cpu.Bytes(), "")
	}()
}

// finish closes a capture's CPU part. The capture may already have been
// evicted; finishing it then is harmless.
func (p *Profiler) finish(c *ProfileCapture, cpu []byte, errMsg string) {
	p.mu.Lock()
	c.CPU = cpu
	if errMsg != "" {
		if c.Err != "" {
			c.Err += "; "
		}
		c.Err += errMsg
	}
	c.Done = true
	p.mu.Unlock()
}

// evictLocked drops one capture, kind-aware like the flight recorder's
// dump eviction: the oldest capture of the most numerous kind goes
// first, so an anomaly flood of one kind cannot wash out a rare kind's
// only profile.
func (p *Profiler) evictLocked() {
	counts := make(map[string]int, 4)
	for _, c := range p.captures {
		counts[c.Kind]++
	}
	victim, victimKind := 0, p.captures[0].Kind
	for i, c := range p.captures {
		if counts[c.Kind] > counts[victimKind] {
			victim, victimKind = i, c.Kind
		}
	}
	p.captures = append(p.captures[:victim], p.captures[victim+1:]...)
}

// Flush blocks until all in-flight CPU windows have closed. Tests (and
// orderly shutdown) use it; production callers never need to.
func (p *Profiler) Flush() {
	if p == nil {
		return
	}
	p.wg.Wait()
}

// Captures summarises the retained captures, oldest first.
func (p *Profiler) Captures() []ProfileCaptureSummary {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfileCaptureSummary, 0, len(p.captures))
	for _, c := range p.captures {
		out = append(out, ProfileCaptureSummary{
			ID:          c.ID,
			Kind:        c.Kind,
			At:          c.At,
			CPUDuration: c.CPUDuration,
			CPUBytes:    len(c.CPU),
			HeapBytes:   len(c.Heap),
			Done:        c.Done,
			Err:         c.Err,
		})
	}
	return out
}

// Capture retrieves one retained capture by ID (payload included).
func (p *Profiler) Capture(id string) (ProfileCapture, bool) {
	if p == nil {
		return ProfileCapture{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.captures {
		if c.ID == id {
			return *c, true
		}
	}
	return ProfileCapture{}, false
}
