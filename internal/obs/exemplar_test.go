package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("maqs_ex_seconds", []float64{0.01, 0.1, 1})

	h.ObserveExemplar(5*time.Millisecond, "trace-a", "span-a")
	h.ObserveExemplar(500*time.Millisecond, "trace-b", "span-b")
	h.ObserveExemplar(50*time.Millisecond, "", "") // untraced: plain observe

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d", len(snap.Histograms))
	}
	bs := snap.Histograms[0].Buckets
	if bs[0].Exemplar == nil || bs[0].Exemplar.TraceID != "trace-a" {
		t.Fatalf("bucket 0 exemplar = %+v", bs[0].Exemplar)
	}
	if bs[2].Exemplar == nil || bs[2].Exemplar.TraceID != "trace-b" || bs[2].Exemplar.SpanID != "span-b" {
		t.Fatalf("bucket 2 exemplar = %+v", bs[2].Exemplar)
	}
	if v := bs[2].Exemplar.Value; v != 0.5 {
		t.Fatalf("exemplar value = %g, want 0.5", v)
	}
	// The untraced 50ms observation counted but left no exemplar.
	if bs[1].Exemplar != nil {
		t.Fatalf("untraced bucket kept exemplar %+v", bs[1].Exemplar)
	}
	if snap.Histograms[0].Count != 3 {
		t.Fatalf("count = %d", snap.Histograms[0].Count)
	}
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("maqs_ex2_seconds", []float64{1})
	h.ObserveExemplar(100*time.Millisecond, "old", "")
	h.ObserveExemplar(200*time.Millisecond, "new", "")
	bs := r.Snapshot().Histograms[0].Buckets
	if bs[0].Exemplar.TraceID != "new" {
		t.Fatalf("exemplar = %+v, want latest", bs[0].Exemplar)
	}
}

func TestExemplarTextRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`maqs_ex_seconds{op="echo"}`, []float64{0.1})
	h.ObserveExemplar(50*time.Millisecond, "0123abcd", "ff00")

	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `maqs_ex_seconds_bucket{op="echo",le="0.1"} 1 # {trace_id="0123abcd",span_id="ff00"} 0.05`
	if !strings.Contains(out, want) {
		t.Fatalf("text exposition missing exemplar trailer:\n%s", out)
	}
	// Buckets without exemplars render exactly as before.
	if !strings.Contains(out, "maqs_ex_seconds_bucket{op=\"echo\",le=\"+Inf\"} 1\n") {
		t.Fatalf("+Inf bucket line changed:\n%s", out)
	}
}

func TestHistogramSnapshotJSONInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("maqs_inf_seconds", []float64{0.5})
	h.Observe(100 * time.Millisecond)
	h.Observe(10 * time.Second) // lands in the +Inf overflow bucket

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// JSON consumers must see the overflow bucket with a meaningful
	// bound, not the internal sentinel value.
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Fatalf(`JSON missing "le":"+Inf": %s`, data)
	}
	if strings.Contains(string(data), "4611686018427387904") {
		t.Fatalf("internal sentinel leaked into JSON: %s", data)
	}

	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	bs := snap.Histograms[0].Buckets
	if len(bs) != 2 || bs[1].UpperBound != infBound || bs[1].Count != 2 {
		t.Fatalf("round-tripped buckets = %+v", bs)
	}
	// Totals are computable from JSON: cumulative overflow count equals
	// the histogram count.
	if bs[len(bs)-1].Count != snap.Histograms[0].Count {
		t.Fatalf("overflow cumulative %d != count %d", bs[len(bs)-1].Count, snap.Histograms[0].Count)
	}
}

func TestBucketCountJSONRoundTripFinite(t *testing.T) {
	in := BucketCount{UpperBound: 0.25, Count: 9}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"le":"0.25","count":9}` {
		t.Fatalf("marshal = %s", data)
	}
	var out BucketCount
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}
