package obs

import (
	"strings"
	"testing"
)

func TestRuntimeMetricsRegistered(t *testing.T) {
	o := New()
	snap := o.Registry.Snapshot()
	if g := snap.Gauges["maqs_go_goroutines"]; g <= 0 {
		t.Fatalf("maqs_go_goroutines = %d, want > 0", g)
	}
	if g := snap.Gauges["maqs_go_heap_bytes"]; g <= 0 {
		t.Fatalf("maqs_go_heap_bytes = %d, want > 0", g)
	}
	if _, ok := snap.Floats["maqs_go_gc_pause_seconds_total"]; !ok {
		t.Fatal("maqs_go_gc_pause_seconds_total missing from snapshot floats")
	}
}

func TestRuntimeMetricsOnMetricsEndpoint(t *testing.T) {
	o := New()
	body := get(t, o.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"maqs_go_goroutines ",
		"maqs_go_heap_bytes ",
		"maqs_go_gc_pause_seconds_total ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestFloatFuncSnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.FloatFunc("maqs_test_seconds_total", func() float64 { return 1.5 })
	snap := r.Snapshot()
	if v := snap.Floats["maqs_test_seconds_total"]; v != 1.5 {
		t.Fatalf("float = %g, want 1.5", v)
	}
	var sb strings.Builder
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "maqs_test_seconds_total 1.5\n") {
		t.Fatalf("text exposition missing float line:\n%s", sb.String())
	}
	// Nil-safety mirrors the other instrument families.
	var nilReg *Registry
	nilReg.FloatFunc("x", func() float64 { return 1 })
	r.FloatFunc("ignored", nil)
	if _, ok := r.Snapshot().Floats["ignored"]; ok {
		t.Fatal("nil callback must not register")
	}
}

func TestSetDebugPage(t *testing.T) {
	o := New()
	o.SetDebugPage("/loadgen", func() any {
		return map[string]any{"running": true, "classes": []string{"gold"}}
	})
	h := o.Handler()

	body := get(t, h, "/loadgen").Body.String()
	if !strings.Contains(body, `"running": true`) || !strings.Contains(body, "gold") {
		t.Fatalf("/loadgen body = %s", body)
	}
	// The index lists the page.
	if idx := get(t, h, "/").Body.String(); !strings.Contains(idx, "/loadgen") {
		t.Fatalf("index missing /loadgen:\n%s", idx)
	}
	// Registration after Handler() still serves (consulted per request).
	o.SetDebugPage("/late", func() any { return "late" })
	if body := get(t, h, "/late").Body.String(); !strings.Contains(body, "late") {
		t.Fatalf("/late body = %s", body)
	}
	// Removal 404s.
	o.SetDebugPage("/late", nil)
	if code := get(t, h, "/late").Code; code != 404 {
		t.Fatalf("removed page returned %d, want 404", code)
	}
	// Built-in routes are not shadowed by pages.
	o.SetDebugPage("/metrics", func() any { return "shadow" })
	if body := get(t, h, "/metrics").Body.String(); strings.Contains(body, "shadow") {
		t.Fatal("debug page must not shadow /metrics")
	}
	// Nil bundle tolerates registration.
	var nilObs *Observability
	nilObs.SetDebugPage("/x", func() any { return nil })
}
