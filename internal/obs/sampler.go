package obs

import (
	"math/rand/v2"
	"strings"
	"sync"
	"time"
)

// Tail-sampling keep/drop reasons, the {reason} label on
// maqs_trace_kept_total and maqs_trace_dropped_total.
const (
	// KeepError marks a trace kept because a span recorded an error.
	KeepError = "error"
	// KeepRetry marks a trace kept because a span retried delivery.
	KeepRetry = "retry"
	// KeepShed marks a trace kept because admission control shed it.
	KeepShed = "shed"
	// KeepDeadline marks a trace kept because it blew a deadline budget.
	KeepDeadline = "deadline"
	// KeepSlow marks a trace kept because its root latency exceeded the
	// class's SLO-derived slow threshold.
	KeepSlow = "slow"
	// KeepAnomaly marks a trace kept because a flight-dump anomaly
	// touched it (MarkAnomaly, fed by the flight recorder's triggers).
	KeepAnomaly = "anomaly"
	// ReasonHealthy labels the probabilistic verdict on traces with
	// nothing wrong: kept with HealthyKeepFraction, dropped otherwise.
	ReasonHealthy = "healthy"
	// DropEvicted labels traces forced out of the pending table before
	// their root ended (table overflow).
	DropEvicted = "evicted"
	// DropOrphan labels spans arriving for a trace the sampler has no
	// pending entry or recent decision for (e.g. a server-returned
	// summary landing after the decision window aged out).
	DropOrphan = "orphan"
)

// Tail-sampler defaults.
const (
	// DefaultMaxPendingTraces bounds the pending table.
	DefaultMaxPendingTraces = 512
	// DefaultMaxSpansPerTrace bounds per-trace buffering; spans beyond it
	// are dropped (counted) so one pathological trace cannot hog memory.
	DefaultMaxSpansPerTrace = 64
	// recentDecisions bounds the ring of recently decided traces that
	// routes late spans (async futures resolving after the root ended,
	// server-returned summaries) to the verdict their trace received.
	recentDecisions = 512
	// recentAnomalies bounds the set of anomaly-marked trace IDs kept for
	// traces that have no pending entry yet at trigger time.
	recentAnomalies = 256
)

// TailSamplingConfig parameterises a TailSampler.
type TailSamplingConfig struct {
	// HealthyKeepFraction is the probability a trace with nothing wrong
	// is kept (0 drops all healthy traces, 1 keeps everything).
	HealthyKeepFraction float64
	// MaxPendingTraces bounds the pending table
	// (DefaultMaxPendingTraces when non-positive).
	MaxPendingTraces int
	// MaxSpansPerTrace bounds buffered spans per trace
	// (DefaultMaxSpansPerTrace when non-positive).
	MaxSpansPerTrace int
	// SlowThreshold is the root-latency bound classifying a trace as
	// SLO-relevant slow when no per-class threshold has been installed
	// (SetSlowThreshold). 0 disables the default slowness check.
	SlowThreshold time.Duration
}

// pendingTrace buffers one trace's finished spans until its root ends.
type pendingTrace struct {
	spans []SpanRecord
	// open counts spans started but not yet ended; the keep/drop decision
	// waits until the trace quiesces locally, so a shared client+server
	// bundle decides once per trace, not once per process role.
	open int
	// sawRoot records that a decision-point span (a local root, or a
	// remote-parented server root) has ended.
	sawRoot bool
	// anomaly marks the trace as touched by a flight-dump trigger.
	anomaly bool
	// dropped counts spans discarded over MaxSpansPerTrace.
	dropped int
}

// TailSampler buffers finished spans per trace until the trace's root
// span ends, then applies the keep/drop policy: traces with errors,
// retries, sheds, deadline misses, SLO-relevant slowness or a marked
// anomaly are always kept; healthy traces are kept with a configurable
// probability. Kept traces flush to the Collector; dropped traces never
// reach it — which is what keeps the bounded span ring useful at load
// (the interesting traces no longer evict first). A nil *TailSampler is
// disabled; every method no-ops.
type TailSampler struct {
	collector *Collector

	mu      sync.Mutex
	pending map[string]*pendingTrace
	// evictQueue holds trace IDs in insertion order; eviction pops from
	// the front, skipping IDs already decided, and the queue compacts
	// lazily so it stays proportional to the pending table.
	evictQueue []string
	// recent maps recently decided trace IDs to their verdict so late
	// spans follow it; recentOrder ages the map FIFO.
	recent      map[string]bool
	recentOrder []string
	// anomalies holds anomaly-marked trace IDs with no pending entry yet.
	anomalies      map[string]struct{}
	anomaliesOrder []string

	healthyKeep float64
	maxPending  int
	maxSpans    int

	slowMu      sync.RWMutex
	slow        map[string]time.Duration // QoS class -> slow threshold
	defaultSlow time.Duration

	kept, droppedC map[string]*Counter
	pendingGauge   *Gauge
	evictions      *Counter
	spanOverflow   *Counter
}

// NewTailSampler constructs a sampler flushing kept traces into c and
// publishing its counters into reg (either may be nil: nil c discards
// kept traces, nil reg skips metrics).
func NewTailSampler(c *Collector, reg *Registry, cfg TailSamplingConfig) *TailSampler {
	if cfg.MaxPendingTraces <= 0 {
		cfg.MaxPendingTraces = DefaultMaxPendingTraces
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	s := &TailSampler{
		collector:   c,
		pending:     make(map[string]*pendingTrace),
		recent:      make(map[string]bool),
		anomalies:   make(map[string]struct{}),
		healthyKeep: cfg.HealthyKeepFraction,
		maxPending:  cfg.MaxPendingTraces,
		maxSpans:    cfg.MaxSpansPerTrace,
		slow:        make(map[string]time.Duration),
		defaultSlow: cfg.SlowThreshold,
		kept:        make(map[string]*Counter),
		droppedC:    make(map[string]*Counter),
	}
	for _, reason := range []string{KeepError, KeepRetry, KeepShed, KeepDeadline, KeepSlow, KeepAnomaly, ReasonHealthy} {
		s.kept[reason] = reg.Counter(`maqs_trace_kept_total{reason="` + reason + `"}`)
	}
	for _, reason := range []string{ReasonHealthy, DropEvicted, DropOrphan} {
		s.droppedC[reason] = reg.Counter(`maqs_trace_dropped_total{reason="` + reason + `"}`)
	}
	s.pendingGauge = reg.Gauge("maqs_trace_pending")
	s.evictions = reg.Counter("maqs_trace_pending_evicted_total")
	s.spanOverflow = reg.Counter("maqs_trace_buffered_spans_dropped_total")
	return s
}

// SetSlowThreshold installs the per-class root-latency bound above which
// a trace counts as SLO-relevant slow. The SLO engine wires negotiated
// contracts' latency objectives (max_rtt_ms) through here.
func (s *TailSampler) SetSlowThreshold(class string, d time.Duration) {
	if s == nil {
		return
	}
	s.slowMu.Lock()
	s.slow[class] = d
	s.slowMu.Unlock()
}

// slowFor resolves the slow bound for a class ("" falls back to the
// configured default; 0 disables the check).
func (s *TailSampler) slowFor(class string) time.Duration {
	s.slowMu.RLock()
	d, ok := s.slow[class]
	s.slowMu.RUnlock()
	if !ok {
		return s.defaultSlow
	}
	return d
}

// MarkAnomaly flags a trace as touched by a flight-dump anomaly: it will
// be kept regardless of its spans' contents. Traces without a pending
// entry yet are remembered in a bounded set. No-op on empty IDs.
func (s *TailSampler) MarkAnomaly(traceID string) {
	if s == nil || traceID == "" {
		return
	}
	s.mu.Lock()
	if e, ok := s.pending[traceID]; ok {
		e.anomaly = true
		s.mu.Unlock()
		return
	}
	if _, ok := s.anomalies[traceID]; !ok {
		s.anomalies[traceID] = struct{}{}
		s.anomaliesOrder = append(s.anomaliesOrder, traceID)
		if len(s.anomaliesOrder) > recentAnomalies {
			delete(s.anomalies, s.anomaliesOrder[0])
			s.anomaliesOrder = s.anomaliesOrder[1:]
		}
	}
	s.mu.Unlock()
}

// spanStarted registers a live span with its trace's pending entry
// (creating it, evicting the oldest entry when the table is full).
// Called from Tracer.newSpan.
func (s *TailSampler) spanStarted(traceID string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	e, ok := s.pending[traceID]
	if !ok {
		e = &pendingTrace{}
		if _, marked := s.anomalies[traceID]; marked {
			delete(s.anomalies, traceID)
			e.anomaly = true
		}
		for len(s.pending) >= s.maxPending {
			if !s.evictOneLocked() {
				break
			}
		}
		s.pending[traceID] = e
		s.evictQueue = append(s.evictQueue, traceID)
		s.compactQueueLocked()
		s.pendingGauge.Set(int64(len(s.pending)))
	}
	e.open++
	s.mu.Unlock()
}

// evictOneLocked drops the oldest pending trace, flushing nothing and
// counting it as dropped{reason="evicted"}. Reports false when no
// pending entry could be found to evict.
func (s *TailSampler) evictOneLocked() bool {
	for len(s.evictQueue) > 0 {
		id := s.evictQueue[0]
		s.evictQueue = s.evictQueue[1:]
		if _, ok := s.pending[id]; !ok {
			continue
		}
		delete(s.pending, id)
		s.rememberLocked(id, false)
		s.evictions.Inc()
		s.droppedC[DropEvicted].Inc()
		s.pendingGauge.Set(int64(len(s.pending)))
		return true
	}
	return false
}

// compactQueueLocked rebuilds the eviction queue when stale (already
// decided) IDs dominate it, keeping it proportional to the table.
func (s *TailSampler) compactQueueLocked() {
	if len(s.evictQueue) <= 2*s.maxPending+16 {
		return
	}
	kept := s.evictQueue[:0]
	for _, id := range s.evictQueue {
		if _, ok := s.pending[id]; ok {
			kept = append(kept, id)
		}
	}
	s.evictQueue = kept
}

// rememberLocked records a trace's verdict for late spans.
func (s *TailSampler) rememberLocked(traceID string, keep bool) {
	if _, ok := s.recent[traceID]; !ok {
		s.recentOrder = append(s.recentOrder, traceID)
		if len(s.recentOrder) > recentDecisions {
			delete(s.recent, s.recentOrder[0])
			s.recentOrder = s.recentOrder[1:]
		}
	}
	s.recent[traceID] = keep
}

// offer receives one locally finished span (from Span.End). root marks a
// decision-point span: a local trace root, or a remote-parented server
// root whose end closes this process's part of the trace.
func (s *TailSampler) offer(rec SpanRecord, root bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	e, ok := s.pending[rec.TraceID]
	if !ok {
		// The pending entry was evicted (or decided) under this span: the
		// verdict, if remembered, still applies.
		keep, known := s.recent[rec.TraceID]
		s.mu.Unlock()
		s.lateSpan(rec, keep, known)
		return
	}
	s.bufferLocked(e, rec)
	if root {
		e.sawRoot = true
	}
	if e.open--; e.open <= 0 && e.sawRoot {
		delete(s.pending, rec.TraceID)
		spans, anomaly, overflow := e.spans, e.anomaly, e.dropped
		reason, keep := s.classify(spans, anomaly)
		s.rememberLocked(rec.TraceID, keep)
		s.pendingGauge.Set(int64(len(s.pending)))
		s.mu.Unlock()
		s.verdict(spans, reason, keep, overflow)
		return
	}
	s.mu.Unlock()
}

// inject receives a span that finished in another process (a
// server-returned summary): it buffers into the pending trace without
// touching the open-span count, or follows the trace's remembered
// verdict when the decision already happened.
func (s *TailSampler) inject(rec SpanRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if e, ok := s.pending[rec.TraceID]; ok {
		s.bufferLocked(e, rec)
		s.mu.Unlock()
		return
	}
	keep, known := s.recent[rec.TraceID]
	s.mu.Unlock()
	s.lateSpan(rec, keep, known)
}

// bufferLocked appends one span under the per-trace cap.
func (s *TailSampler) bufferLocked(e *pendingTrace, rec SpanRecord) {
	if len(e.spans) >= s.maxSpans {
		e.dropped++
		s.spanOverflow.Inc()
		return
	}
	e.spans = append(e.spans, rec)
}

// lateSpan routes a span whose trace already has (or lost) its verdict.
func (s *TailSampler) lateSpan(rec SpanRecord, keep, known bool) {
	switch {
	case known && keep:
		s.collector.record(rec)
	case known:
		// Dropped trace: its late spans follow silently (the drop was
		// already counted once, at decision time).
	default:
		s.droppedC[DropOrphan].Inc()
	}
}

// verdict publishes one decided trace: flush to the collector when kept,
// count either way.
func (s *TailSampler) verdict(spans []SpanRecord, reason string, keep bool, overflow int) {
	if keep {
		for _, rec := range spans {
			s.collector.record(rec)
		}
		if c, ok := s.kept[reason]; ok {
			c.Inc()
		}
		return
	}
	if c, ok := s.droppedC[reason]; ok {
		c.Inc()
	}
	_ = overflow
}

// classify scans a quiesced trace's spans and names the keep reason, or
// decides the healthy trace probabilistically.
func (s *TailSampler) classify(spans []SpanRecord, anomaly bool) (reason string, keep bool) {
	var retried, slow bool
	class := ""
	var rootDur time.Duration
	for i := range spans {
		rec := &spans[i]
		if rec.Err != "" {
			switch {
			case strings.Contains(rec.Err, "shed by admission control"):
				return KeepShed, true
			case strings.Contains(rec.Err, "timed out") || strings.Contains(rec.Err, "deadline"):
				return KeepDeadline, true
			}
			// Generic errors keep scanning: a shed/deadline span later in
			// the trace names the keep reason more precisely.
			reason = KeepError
		}
		for _, ev := range rec.Events {
			if ev.Name == "retry.attempt" {
				retried = true
			}
		}
		if class == "" {
			for _, a := range rec.Attrs {
				if a.Key == "characteristic" {
					class = a.Value
					break
				}
			}
		}
		if (rec.ParentID == "" || rec.RemoteParent) && rec.Duration > rootDur {
			rootDur = rec.Duration
		}
	}
	if reason == KeepError {
		return KeepError, true
	}
	if retried {
		return KeepRetry, true
	}
	if anomaly {
		return KeepAnomaly, true
	}
	if bound := s.slowFor(class); bound > 0 && rootDur > bound {
		slow = true
	}
	if slow {
		return KeepSlow, true
	}
	if s.healthyKeep > 0 && rand.Float64() < s.healthyKeep {
		return ReasonHealthy, true
	}
	return ReasonHealthy, false
}

// PendingCount reports the pending table's occupancy.
func (s *TailSampler) PendingCount() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// TailSamplerStats is the sampler's aggregate view (the loadgen report
// and /loadgen status embed it).
type TailSamplerStats struct {
	Pending int               `json:"pending"`
	Evicted uint64            `json:"evicted"`
	Kept    map[string]uint64 `json:"kept,omitempty"`
	Dropped map[string]uint64 `json:"dropped,omitempty"`
}

// Stats snapshots the sampler's counters.
func (s *TailSampler) Stats() TailSamplerStats {
	st := TailSamplerStats{}
	if s == nil {
		return st
	}
	st.Pending = s.PendingCount()
	st.Evicted = s.evictions.Value()
	st.Kept = make(map[string]uint64, len(s.kept))
	for reason, c := range s.kept {
		if v := c.Value(); v > 0 {
			st.Kept[reason] = v
		}
	}
	st.Dropped = make(map[string]uint64, len(s.droppedC))
	for reason, c := range s.droppedC {
		if v := c.Value(); v > 0 {
			st.Dropped[reason] = v
		}
	}
	return st
}
