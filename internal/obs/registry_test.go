package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryAndInstrumentsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", nil).Observe(time.Millisecond)
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Fatalf("nil registry snapshot has %d counters", n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(2 * time.Second)        // overflow
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("got %d histograms", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.Count != 4 {
		t.Fatalf("count = %d, want 4", hs.Count)
	}
	wantCum := []uint64{1, 2, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if hs.Sum < 2.0 || hs.Sum > 2.1 {
		t.Fatalf("sum = %g, want ~2.05", hs.Sum)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", nil).Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestCallbackInstruments(t *testing.T) {
	r := NewRegistry()
	hits := uint64(11)
	depth := int64(-3)
	r.CounterFunc("maqs_pool_hits_total", func() uint64 { return hits })
	r.GaugeFunc("maqs_queue_depth", func() int64 { return depth })
	snap := r.Snapshot()
	if snap.Counters["maqs_pool_hits_total"] != 11 {
		t.Fatalf("counter func value = %d", snap.Counters["maqs_pool_hits_total"])
	}
	if snap.Gauges["maqs_queue_depth"] != -3 {
		t.Fatalf("gauge func value = %d", snap.Gauges["maqs_queue_depth"])
	}
	// Callbacks are read at snapshot time, not registration time.
	hits, depth = 12, 4
	snap = r.Snapshot()
	if snap.Counters["maqs_pool_hits_total"] != 12 || snap.Gauges["maqs_queue_depth"] != 4 {
		t.Fatalf("callbacks not re-evaluated: %v %v", snap.Counters, snap.Gauges)
	}
	// Latest registration wins; text exposition includes callback values.
	r.CounterFunc("maqs_pool_hits_total", func() uint64 { return 99 })
	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "maqs_pool_hits_total 99") {
		t.Fatalf("text export missing callback counter:\n%s", text.String())
	}
	// Nil-safety.
	var nilReg *Registry
	nilReg.CounterFunc("x", func() uint64 { return 1 })
	nilReg.GaugeFunc("y", func() int64 { return 1 })
}

func TestSnapshotExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("maqs_requests_total").Add(3)
	r.Gauge("maqs_bindings").Set(2)
	r.Histogram("maqs_rtt_seconds", []float64{0.01}).Observe(time.Millisecond)
	snap := r.Snapshot()

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"maqs_requests_total 3",
		"maqs_bindings 2",
		`maqs_rtt_seconds_bucket{le="0.01"} 1`,
		`maqs_rtt_seconds_bucket{le="+Inf"} 1`,
		"maqs_rtt_seconds_count 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text export missing %q:\n%s", want, text.String())
		}
	}

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON export does not round-trip: %v", err)
	}
	if decoded.Counters["maqs_requests_total"] != 3 {
		t.Fatalf("decoded counter = %d", decoded.Counters["maqs_requests_total"])
	}
}
