package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestProfilerCapturesOnWatchedAnomaly(t *testing.T) {
	reg := NewRegistry()
	p := NewProfiler(reg, ProfilingConfig{CPUDuration: 10 * time.Millisecond})
	p.OnAnomaly("slo-burn-1", AnomalySLOBurn, "")
	p.Flush()
	caps := p.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	c := caps[0]
	if c.ID != "slo-burn-1" || c.Kind != AnomalySLOBurn {
		t.Fatalf("capture identity = %s/%s", c.ID, c.Kind)
	}
	if !c.Done {
		t.Fatal("capture not done after Flush")
	}
	if c.HeapBytes == 0 {
		t.Fatal("heap snapshot empty")
	}
	if c.CPUBytes == 0 {
		t.Fatalf("cpu profile empty (err=%q)", c.Err)
	}
	if got := reg.Counter("maqs_profile_captures_total").Value(); got != 1 {
		t.Fatalf("captures_total = %d, want 1", got)
	}
}

func TestProfilerIgnoresUnwatchedKinds(t *testing.T) {
	p := NewProfiler(NewRegistry(), ProfilingConfig{CPUDuration: time.Millisecond})
	p.OnAnomaly("deadline-miss-1", AnomalyDeadlineMiss, "")
	p.OnAnomaly("qos-violation-1", AnomalyQoSViolation, "")
	p.Flush()
	if got := len(p.Captures()); got != 0 {
		t.Fatalf("unwatched anomalies captured %d profiles", got)
	}
}

func TestProfilerEvictionIsKindAware(t *testing.T) {
	p := NewProfiler(NewRegistry(), ProfilingConfig{CPUDuration: time.Millisecond, MaxCaptures: 2})
	p.OnAnomaly("breaker-open-1", AnomalyBreakerOpen, "")
	p.Flush()
	for i := 0; i < 3; i++ {
		p.OnAnomaly(fmt.Sprintf("slo-burn-%d", i+1), AnomalySLOBurn, "")
		p.Flush()
	}
	caps := p.Captures()
	if len(caps) != 2 {
		t.Fatalf("captures = %d, want 2", len(caps))
	}
	kinds := map[string]int{}
	for _, c := range caps {
		kinds[c.Kind]++
	}
	if kinds[AnomalyBreakerOpen] != 1 {
		t.Fatalf("slo-burn flood evicted the only breaker-open capture: %v", kinds)
	}
}

func TestProfileEndpoint(t *testing.T) {
	o := NewWithConfig(Config{Profiling: &ProfilingConfig{CPUDuration: 10 * time.Millisecond}})
	o.Flight.SetDumpCooldown(0)
	dumpID := o.Flight.Trigger(AnomalySLOBurn, FlightRecord{Operation: "(slo)"})
	if dumpID == "" {
		t.Fatal("trigger suppressed")
	}
	o.Profiler.Flush()
	h := o.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("/profile index: %d", rec.Code)
	}
	body := rec.Body.String()
	if want := `"` + dumpID + `"`; !strings.Contains(body, want) {
		t.Fatalf("/profile index missing capture %s: %s", dumpID, body)
	}

	for _, kind := range []string{"cpu", "heap"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/profile?id="+dumpID+"&kind="+kind, nil))
		if rec.Code != 200 {
			t.Fatalf("/profile %s download: %d %s", kind, rec.Code, rec.Body.String())
		}
		if rec.Body.Len() == 0 {
			t.Fatalf("/profile %s download empty", kind)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/octet-stream" {
			t.Fatalf("/profile %s content type %q", kind, ct)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profile?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id: %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/profile?id="+dumpID+"&kind=goroutine", nil))
	if rec.Code != 400 {
		t.Fatalf("bad kind: %d, want 400", rec.Code)
	}
}
