package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// sampledBundle builds a collector/registry/tracer/sampler quartet for
// tail-sampling tests.
func sampledBundle(t *testing.T, cfg TailSamplingConfig) (*Collector, *Registry, *Tracer, *TailSampler) {
	t.Helper()
	c := NewCollector(0)
	reg := NewRegistry()
	s := NewTailSampler(c, reg, cfg)
	tr := NewTracer(c)
	tr.SetSampler(s)
	return c, reg, tr, s
}

func counterValue(reg *Registry, name string) uint64 { return reg.Counter(name).Value() }

func TestTailSamplerDropsHealthyAtZeroFraction(t *testing.T) {
	c, reg, tr, s := sampledBundle(t, TailSamplingConfig{HealthyKeepFraction: 0})
	_, root := tr.StartSpan(context.Background(), "client.call")
	child := root.Child("wire.send")
	child.End()
	root.End()
	if got := c.TotalRecorded(); got != 0 {
		t.Fatalf("healthy trace reached collector: %d spans", got)
	}
	if got := counterValue(reg, `maqs_trace_dropped_total{reason="healthy"}`); got != 1 {
		t.Fatalf("dropped{healthy} = %d, want 1", got)
	}
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("pending table leaked %d entries", got)
	}
}

func TestTailSamplerKeepsHealthyAtFullFraction(t *testing.T) {
	c, reg, tr, _ := sampledBundle(t, TailSamplingConfig{HealthyKeepFraction: 1})
	_, root := tr.StartSpan(context.Background(), "client.call")
	root.End()
	if got := c.TotalRecorded(); got != 1 {
		t.Fatalf("kept trace recorded %d spans, want 1", got)
	}
	if got := counterValue(reg, `maqs_trace_kept_total{reason="healthy"}`); got != 1 {
		t.Fatalf("kept{healthy} = %d, want 1", got)
	}
}

func TestTailSamplerClassification(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		event  string
		reason string
	}{
		{"error", errors.New("BAD_OPERATION"), "", KeepError},
		{"shed", errors.New("request shed by admission control (queue full, class bulk)"), "", KeepShed},
		{"deadline", errors.New("invocation of echo timed out"), "", KeepDeadline},
		{"retry", nil, "retry.attempt", KeepRetry},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, reg, tr, _ := sampledBundle(t, TailSamplingConfig{})
			_, root := tr.StartSpan(context.Background(), "client.call")
			child := root.Child("wire.send")
			child.RecordError(tc.err)
			if tc.event != "" {
				child.AddEvent(tc.event)
			}
			child.End()
			root.End()
			name := fmt.Sprintf("maqs_trace_kept_total{reason=%q}", tc.reason)
			if got := counterValue(reg, name); got != 1 {
				t.Fatalf("kept{%s} = %d, want 1", tc.reason, got)
			}
			if got := c.TotalRecorded(); got != 2 {
				t.Fatalf("kept trace recorded %d spans, want 2", got)
			}
		})
	}
}

func TestTailSamplerSlowThresholdPerClass(t *testing.T) {
	c, reg, tr, s := sampledBundle(t, TailSamplingConfig{})
	s.SetSlowThreshold("bulk", time.Nanosecond)
	_, root := tr.StartSpan(context.Background(), "client.call")
	root.SetAttr("characteristic", "bulk")
	time.Sleep(time.Millisecond)
	root.End()
	if got := counterValue(reg, `maqs_trace_kept_total{reason="slow"}`); got != 1 {
		t.Fatalf("kept{slow} = %d, want 1", got)
	}
	if got := c.TotalRecorded(); got != 1 {
		t.Fatalf("slow trace recorded %d spans, want 1", got)
	}
	// A class without a threshold stays on the (disabled) default.
	_, other := tr.StartSpan(context.Background(), "client.call")
	other.SetAttr("characteristic", "other")
	time.Sleep(time.Millisecond)
	other.End()
	if got := counterValue(reg, `maqs_trace_kept_total{reason="slow"}`); got != 1 {
		t.Fatalf("unrelated class classified slow (kept{slow} = %d)", got)
	}
}

func TestTailSamplerDefaultSlowThreshold(t *testing.T) {
	_, reg, tr, _ := sampledBundle(t, TailSamplingConfig{SlowThreshold: time.Nanosecond})
	_, root := tr.StartSpan(context.Background(), "client.call")
	time.Sleep(time.Millisecond)
	root.End()
	if got := counterValue(reg, `maqs_trace_kept_total{reason="slow"}`); got != 1 {
		t.Fatalf("kept{slow} = %d, want 1", got)
	}
}

func TestTailSamplerAnomalyPinsTrace(t *testing.T) {
	c, reg, tr, s := sampledBundle(t, TailSamplingConfig{})
	_, root := tr.StartSpan(context.Background(), "client.call")
	s.MarkAnomaly(root.Context().TraceID.String())
	root.End()
	if got := counterValue(reg, `maqs_trace_kept_total{reason="anomaly"}`); got != 1 {
		t.Fatalf("kept{anomaly} = %d, want 1", got)
	}
	if got := c.TotalRecorded(); got != 1 {
		t.Fatalf("anomaly trace recorded %d spans, want 1", got)
	}
}

func TestTailSamplerAnomalyBeforeFirstSpan(t *testing.T) {
	_, reg, tr, s := sampledBundle(t, TailSamplingConfig{})
	trace := newTraceID()
	s.MarkAnomaly(trace.String())
	root := tr.StartRemote(SpanContext{}, "server.dispatch")
	// The fresh trace the remote start mints is unrelated; mark the real
	// one by constructing a span in that trace via StartRemote's parent.
	root.End()
	parent := SpanContext{TraceID: trace, SpanID: newSpanID(), Sampled: true}
	sp := tr.StartRemote(parent, "server.dispatch")
	sp.End()
	if got := counterValue(reg, `maqs_trace_kept_total{reason="anomaly"}`); got != 1 {
		t.Fatalf("kept{anomaly} = %d, want 1", got)
	}
}

func TestTailSamplerEvictsOldestPending(t *testing.T) {
	_, reg, tr, s := sampledBundle(t, TailSamplingConfig{MaxPendingTraces: 2})
	_, a := tr.StartSpan(context.Background(), "a")
	_, b := tr.StartSpan(context.Background(), "b")
	_, c3 := tr.StartSpan(context.Background(), "c")
	if got := s.PendingCount(); got != 2 {
		t.Fatalf("pending = %d, want 2 after eviction", got)
	}
	if got := counterValue(reg, `maqs_trace_dropped_total{reason="evicted"}`); got != 1 {
		t.Fatalf("dropped{evicted} = %d, want 1", got)
	}
	if got := counterValue(reg, "maqs_trace_pending_evicted_total"); got != 1 {
		t.Fatalf("evicted_total = %d, want 1", got)
	}
	a.End()
	b.End()
	c3.End()
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("pending table leaked %d entries", got)
	}
}

func TestTailSamplerLateSpanFollowsVerdict(t *testing.T) {
	c, _, tr, _ := sampledBundle(t, TailSamplingConfig{})
	_, root := tr.StartSpan(context.Background(), "client.call")
	late := root.Child("late")
	root.RecordError(errors.New("boom"))
	root.End()
	// The trace has not quiesced (late is open), so nothing decided yet.
	if got := c.TotalRecorded(); got != 0 {
		t.Fatalf("undecided trace already recorded %d spans", got)
	}
	late.End()
	if got := c.TotalRecorded(); got != 2 {
		t.Fatalf("decided trace recorded %d spans, want 2", got)
	}
	// A post-decision straggler in the kept trace records directly.
	tr.Inject(SpanRecord{TraceID: root.Context().TraceID.String(), SpanID: newSpanID().String(), Name: "straggler"})
	if got := c.TotalRecorded(); got != 3 {
		t.Fatalf("late injected span not recorded (total %d)", got)
	}
}

func TestTailSamplerInjectBuffersIntoPendingTrace(t *testing.T) {
	c, _, tr, _ := sampledBundle(t, TailSamplingConfig{})
	_, root := tr.StartSpan(context.Background(), "client.call")
	tr.Inject(SpanRecord{
		TraceID:  root.Context().TraceID.String(),
		SpanID:   newSpanID().String(),
		ParentID: root.Context().SpanID.String(),
		Name:     "server.dispatch",
		Err:      "boom",
	})
	if got := c.TotalRecorded(); got != 0 {
		t.Fatalf("injected span bypassed the pending table (%d recorded)", got)
	}
	root.End()
	// The injected server error makes the whole trace keep-worthy.
	if got := c.TotalRecorded(); got != 2 {
		t.Fatalf("trace with injected error recorded %d spans, want 2", got)
	}
}

func TestTailSamplerOrphanInjectCounts(t *testing.T) {
	c, reg, tr, _ := sampledBundle(t, TailSamplingConfig{})
	tr.Inject(SpanRecord{TraceID: newTraceID().String(), SpanID: newSpanID().String(), Name: "orphan"})
	if got := counterValue(reg, `maqs_trace_dropped_total{reason="orphan"}`); got != 1 {
		t.Fatalf("dropped{orphan} = %d, want 1", got)
	}
	if got := c.TotalRecorded(); got != 0 {
		t.Fatalf("orphan span recorded (%d)", got)
	}
}

func TestTailSamplerSpanCapPerTrace(t *testing.T) {
	c, reg, tr, _ := sampledBundle(t, TailSamplingConfig{HealthyKeepFraction: 1, MaxSpansPerTrace: 2})
	_, root := tr.StartSpan(context.Background(), "client.call")
	for i := 0; i < 4; i++ {
		root.Child("noise").End()
	}
	root.End()
	if got := counterValue(reg, "maqs_trace_buffered_spans_dropped_total"); got != 3 {
		t.Fatalf("span overflow = %d, want 3", got)
	}
	if got := c.TotalRecorded(); got != 2 {
		t.Fatalf("kept trace recorded %d spans, want capped 2", got)
	}
}

func TestTailSamplerStats(t *testing.T) {
	_, _, tr, s := sampledBundle(t, TailSamplingConfig{})
	_, root := tr.StartSpan(context.Background(), "client.call")
	root.RecordError(errors.New("boom"))
	root.End()
	st := s.Stats()
	if st.Kept[KeepError] != 1 {
		t.Fatalf("stats kept[error] = %d, want 1", st.Kept[KeepError])
	}
	if st.Pending != 0 {
		t.Fatalf("stats pending = %d, want 0", st.Pending)
	}
	// Nil sampler stats are empty, not a panic.
	var nilS *TailSampler
	if got := nilS.Stats(); got.Pending != 0 || len(got.Kept) != 0 {
		t.Fatalf("nil sampler stats = %+v", got)
	}
}

func TestTailSamplerServerOnlyTraceDecidesOnRemoteRoot(t *testing.T) {
	c, reg, tr, s := sampledBundle(t, TailSamplingConfig{})
	parent := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	root := tr.StartRemote(parent, "server.dispatch")
	servant := root.Child("server.servant")
	servant.End()
	root.RecordError(errors.New("boom"))
	root.End()
	if got := c.TotalRecorded(); got != 2 {
		t.Fatalf("server-only trace recorded %d spans, want 2", got)
	}
	if got := counterValue(reg, `maqs_trace_kept_total{reason="error"}`); got != 1 {
		t.Fatalf("kept{error} = %d, want 1", got)
	}
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("pending table leaked %d entries", got)
	}
}
