package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerMetricsRoutes(t *testing.T) {
	o := New()
	o.Registry.Counter("maqs_test_total").Add(7)
	h := o.Handler()

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "charset=utf-8") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "maqs_test_total 7") {
		t.Errorf("/metrics text missing counter:\n%s", rec.Body.String())
	}

	rec = get(t, h, "/metrics?format=json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("/metrics?format=json content type %q", ct)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap.Counters["maqs_test_total"] != 7 {
		t.Errorf("JSON counters = %v", snap.Counters)
	}
}

func TestHandlerTraceRoutesAndLimit(t *testing.T) {
	o := New()
	for _, name := range []string{"one", "two", "three"} {
		_, sp := o.Tracer.StartSpan(context.Background(), name)
		sp.End()
	}
	h := o.Handler()

	rec := get(t, h, "/trace")
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/json; charset=utf-8" {
		t.Fatalf("/trace status %d ct %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var spans []SpanRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}

	rec = get(t, h, "/trace?limit=1")
	spans = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("limited trace JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "three" {
		t.Fatalf("?limit=1 should keep the newest span, got %+v", spans)
	}

	// Filter by trace id.
	id := spans[0].TraceID
	rec = get(t, h, "/trace?trace="+id)
	spans = nil
	_ = json.Unmarshal(rec.Body.Bytes(), &spans)
	if len(spans) != 1 || spans[0].TraceID != id {
		t.Fatalf("?trace filter got %+v", spans)
	}

	for _, bad := range []string{"/trace?limit=x", "/trace?limit=-2", "/flight?limit=1.5"} {
		if rec := get(t, h, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", bad, rec.Code)
		}
	}

	rec = get(t, h, "/trace/ops")
	var ops map[string]OpStats
	if err := json.Unmarshal(rec.Body.Bytes(), &ops); err != nil {
		t.Fatalf("ops JSON: %v", err)
	}
	if len(ops) == 0 {
		t.Error("no operation aggregates")
	}
}

func TestHandlerFlightRoutes(t *testing.T) {
	o := New()
	o.Flight.SetDumpCooldown(0)
	for i := 0; i < DefaultFlightSnapshotDepth+10; i++ {
		o.Flight.Record(FlightRecord{Operation: "fetch", Outcome: "ok"})
	}
	id := o.Flight.Trigger(AnomalyRetryExhausted, FlightRecord{
		Operation: "fetch", Attempts: 3, BreakerState: "Closed", Outcome: "TRANSIENT",
	})
	h := o.Handler()

	rec := get(t, h, "/flight")
	if rec.Code != http.StatusOK {
		t.Fatalf("/flight status %d", rec.Code)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("flight JSON: %v", err)
	}
	// The unbounded index defaults to the snapshot depth.
	if len(snap.Records) != DefaultFlightSnapshotDepth {
		t.Errorf("index records = %d, want default depth %d", len(snap.Records), DefaultFlightSnapshotDepth)
	}
	if len(snap.Dumps) != 1 || snap.Dumps[0].ID != id {
		t.Fatalf("index dumps = %+v, want %q listed", snap.Dumps, id)
	}

	rec = get(t, h, "/flight?limit=2")
	snap = FlightSnapshot{}
	_ = json.Unmarshal(rec.Body.Bytes(), &snap)
	if len(snap.Records) != 2 {
		t.Errorf("?limit=2 records = %d", len(snap.Records))
	}

	rec = get(t, h, "/flight?dump="+id)
	if rec.Code != http.StatusOK {
		t.Fatalf("dump retrieval status %d", rec.Code)
	}
	var dump FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("dump JSON: %v", err)
	}
	if dump.ID != id || dump.Trigger.Attempts != 3 || dump.Trigger.BreakerState != "Closed" {
		t.Errorf("dump lost forensic fields: %+v", dump.Trigger)
	}

	if rec := get(t, h, "/flight?dump=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown dump status %d, want 404", rec.Code)
	}
}

func TestHandlerHealthAndReady(t *testing.T) {
	o := New()
	h := o.Handler()

	rec := get(t, h, "/health")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("/health = %d %s", rec.Code, rec.Body.String())
	}

	// No checks: ready.
	rec = get(t, h, "/ready")
	if rec.Code != http.StatusOK {
		t.Fatalf("/ready with no checks = %d", rec.Code)
	}

	o.SetReadiness("alpha", func() (bool, string) { return true, "fine" })
	o.SetReadiness("beta", func() (bool, string) { return false, "2 breakers open" })
	rec = get(t, h, "/ready")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/ready with failing check = %d, want 503", rec.Code)
	}
	var rep ReadyReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("ready JSON: %v", err)
	}
	if rep.Ready || len(rep.Checks) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	// Checks come back name-sorted.
	if rep.Checks[0].Name != "alpha" || rep.Checks[1].Name != "beta" {
		t.Errorf("check order %+v", rep.Checks)
	}
	if rep.Checks[1].Detail != "2 breakers open" {
		t.Errorf("detail lost: %+v", rep.Checks[1])
	}

	// Removing the failing check restores readiness.
	o.SetReadiness("beta", nil)
	if rec := get(t, h, "/ready"); rec.Code != http.StatusOK {
		t.Errorf("/ready after removal = %d", rec.Code)
	}
}

func TestHandlerIndexAndNotFound(t *testing.T) {
	o := New()
	h := o.Handler()
	rec := get(t, h, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("index status %d", rec.Code)
	}
	for _, want := range []string{"/metrics", "/trace", "/flight", "/health", "/ready"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("index page missing %s", want)
		}
	}
	if rec := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d", rec.Code)
	}
}

func TestReadinessNilSafetyAndLiteralBundle(t *testing.T) {
	var o *Observability
	o.SetReadiness("x", func() (bool, string) { return false, "" })
	if rep := o.Ready(); !rep.Ready {
		t.Error("nil bundle must report ready")
	}
	// A literal-constructed bundle (no New*) still supports readiness.
	lit := &Observability{Registry: NewRegistry()}
	lit.SetReadiness("only", func() (bool, string) { return false, "down" })
	if rep := lit.Ready(); rep.Ready || len(rep.Checks) != 1 {
		t.Errorf("literal bundle report = %+v", rep)
	}
}
