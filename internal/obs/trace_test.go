package obs

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: newTraceID(), SpanID: newSpanID(), Sampled: true}
	tp := sc.Traceparent()
	if len(tp) != traceparentLen {
		t.Fatalf("traceparent length = %d, want %d", len(tp), traceparentLen)
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent rejected %q", tp)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}

	unsampled := SpanContext{TraceID: sc.TraceID, SpanID: sc.SpanID, Sampled: false}
	got, ok = ParseTraceparent(unsampled.Traceparent())
	if !ok || got.Sampled {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := string(SpanContext{TraceID: newTraceID(), SpanID: newSpanID()}.Traceparent())
	bad := []string{
		"",
		"00",
		valid[:len(valid)-1], // truncated
		"00-00000000000000000000000000000000-" + valid[36:], // zero trace id
		valid[:3] + "zz" + valid[5:],                        // non-hex
		"ff" + valid[2:],                                    // forbidden version
		valid + "x",                                         // trailing junk without separator
	}
	for _, in := range bad {
		if _, ok := ParseTraceparent([]byte(in)); ok {
			t.Fatalf("ParseTraceparent accepted %q", in)
		}
	}
	// Forward compat: a longer payload with a dash separator is accepted.
	if _, ok := ParseTraceparent([]byte(valid + "-extra")); !ok {
		t.Fatal("ParseTraceparent rejected versioned extension")
	}
}

func TestSpanParentChildLinkage(t *testing.T) {
	col := NewCollector(16)
	tr := NewTracer(col)

	ctx, root := tr.StartSpan(context.Background(), "client.call")
	root.SetOperation("echo")
	ctx, mid := StartChild(ctx, "client.mediator")
	_, leaf := StartChild(ctx, "wire.send")
	leaf.RecordError(errors.New("boom"))
	leaf.End()
	mid.End()
	root.End()

	spans := col.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootRec, midRec, leafRec := byName["client.call"], byName["client.mediator"], byName["wire.send"]
	if rootRec.ParentID != "" {
		t.Fatalf("root has parent %q", rootRec.ParentID)
	}
	if midRec.ParentID != rootRec.SpanID || leafRec.ParentID != midRec.SpanID {
		t.Fatalf("broken linkage: %+v / %+v / %+v", rootRec, midRec, leafRec)
	}
	if rootRec.TraceID != midRec.TraceID || midRec.TraceID != leafRec.TraceID {
		t.Fatal("spans do not share a trace ID")
	}
	if leafRec.Err != "boom" {
		t.Fatalf("leaf error = %q", leafRec.Err)
	}
	if rootRec.Operation != "echo" {
		t.Fatalf("root operation = %q", rootRec.Operation)
	}
}

func TestStartRemoteLinksAcrossProcesses(t *testing.T) {
	clientCol := NewCollector(4)
	serverCol := NewCollector(4)
	clientTr := NewTracer(clientCol)
	serverTr := NewTracer(serverCol)

	_, wire := clientTr.StartSpan(context.Background(), "wire.send")
	carried, ok := ParseTraceparent(wire.Context().Traceparent())
	if !ok {
		t.Fatal("injection does not parse")
	}
	srv := serverTr.StartRemote(carried, "server.dispatch")
	srv.End()
	wire.End()

	srvRec := serverCol.Snapshot()[0]
	if srvRec.TraceID != wire.Context().TraceID.String() {
		t.Fatal("server span lost the trace ID")
	}
	if srvRec.ParentID != wire.Context().SpanID.String() || !srvRec.RemoteParent {
		t.Fatalf("server span parent = %q remote=%v", srvRec.ParentID, srvRec.RemoteParent)
	}

	// An invalid carried context still yields a fresh server-side trace.
	orphan := serverTr.StartRemote(SpanContext{}, "server.dispatch")
	if orphan == nil || !orphan.Context().Valid() {
		t.Fatal("StartRemote with invalid parent did not mint a trace")
	}
}

func TestNilTracerAndSpanFastPath(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer polluted the context")
	}
	// All span methods tolerate nil receivers.
	sp.SetOperation("op")
	sp.SetAttr("k", "v")
	sp.AddEvent("e")
	sp.RecordError(errors.New("x"))
	if c := sp.Child("y"); c != nil {
		t.Fatal("nil span minted a child")
	}
	sp.End()
	if _, child := StartChild(context.Background(), "z"); child != nil {
		t.Fatal("StartChild without a parent minted a span")
	}
}

func TestCollectorRingAndAggregation(t *testing.T) {
	col := NewCollector(4)
	tr := NewTracer(col)
	for i := 0; i < 10; i++ {
		_, sp := tr.StartSpan(context.Background(), "stage")
		sp.SetOperation("echo")
		if i%2 == 0 {
			sp.RecordError(errors.New("fail"))
		}
		sp.End()
	}
	spans := col.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if got := col.TotalRecorded(); got != 10 {
		t.Fatalf("total recorded = %d, want 10", got)
	}
	ops := col.Operations()
	agg, ok := ops["stage:echo"]
	if !ok {
		t.Fatalf("missing aggregation key, have %v", ops)
	}
	if agg.Count != 10 || agg.Errors != 5 {
		t.Fatalf("agg = %+v, want count 10 errors 5", agg)
	}
	if agg.Min > agg.Max || agg.Total < agg.Max {
		t.Fatalf("inconsistent agg durations: %+v", agg)
	}
	col.Reset()
	if len(col.Snapshot()) != 0 || col.TotalRecorded() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestSpanEventsAndDoubleEnd(t *testing.T) {
	col := NewCollector(4)
	tr := NewTracer(col)
	_, sp := tr.StartSpan(context.Background(), "qos.negotiate")
	sp.AddEvent("contract.established", Attr{Key: "epoch", Value: "0"})
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // second End must not double-record
	spans := col.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	rec := spans[0]
	if len(rec.Events) != 1 || rec.Events[0].Name != "contract.established" {
		t.Fatalf("events = %+v", rec.Events)
	}
	if rec.Duration < time.Millisecond {
		t.Fatalf("duration = %v, want >= 1ms", rec.Duration)
	}
}
