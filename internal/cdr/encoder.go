package cdr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ByteOrder identifies the byte order of a CDR encapsulation.
type ByteOrder byte

// Byte orders. CDR marks little-endian encapsulations with flag octet 1.
const (
	BigEndian    ByteOrder = 0
	LittleEndian ByteOrder = 1
)

func (bo ByteOrder) order() binary.ByteOrder {
	if bo == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

func (bo ByteOrder) appender() binary.AppendByteOrder {
	if bo == LittleEndian {
		return binary.LittleEndian
	}
	return binary.BigEndian
}

// String returns the conventional name of the byte order.
func (bo ByteOrder) String() string {
	if bo == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// maxStringLen bounds marshalled string and sequence lengths so that a
// corrupted length prefix cannot drive allocation to gigabytes.
const maxStringLen = 1 << 26 // 64 MiB

// Encoder marshals values into a CDR buffer. The zero value is not usable;
// construct one with NewEncoder.
type Encoder struct {
	buf   []byte
	order ByteOrder
	// base is the offset within buf where alignment is measured from.
	// Encapsulations restart alignment at their own beginning.
	base int
}

// NewEncoder returns an Encoder producing the given byte order.
func NewEncoder(order ByteOrder) *Encoder {
	return &Encoder{order: order}
}

// Order reports the byte order of the encoder.
func (e *Encoder) Order() ByteOrder { return e.order }

// Bytes returns the encoded buffer. The buffer is owned by the encoder and
// must not be modified while the encoder is still in use.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// align pads the buffer with zero octets so the next write lands on a
// multiple of n, measured from the encapsulation base.
func (e *Encoder) align(n int) {
	rel := len(e.buf) - e.base
	if pad := (n - rel%n) % n; pad > 0 {
		e.buf = append(e.buf, make([]byte, pad)...)
	}
}

// WriteOctet appends a single octet.
func (e *Encoder) WriteOctet(v byte) { e.buf = append(e.buf, v) }

// WriteBool appends a boolean encoded as one octet (0 or 1).
func (e *Encoder) WriteBool(v bool) {
	if v {
		e.WriteOctet(1)
	} else {
		e.WriteOctet(0)
	}
}

// WriteChar appends a single character octet.
func (e *Encoder) WriteChar(v byte) { e.WriteOctet(v) }

// WriteUShort appends an unsigned 16-bit integer at 2-byte alignment.
func (e *Encoder) WriteUShort(v uint16) {
	e.align(2)
	e.buf = e.order.appender().AppendUint16(e.buf, v)
}

// WriteShort appends a signed 16-bit integer at 2-byte alignment.
func (e *Encoder) WriteShort(v int16) { e.WriteUShort(uint16(v)) }

// WriteULong appends an unsigned 32-bit integer at 4-byte alignment.
func (e *Encoder) WriteULong(v uint32) {
	e.align(4)
	e.buf = e.order.appender().AppendUint32(e.buf, v)
}

// WriteLong appends a signed 32-bit integer at 4-byte alignment.
func (e *Encoder) WriteLong(v int32) { e.WriteULong(uint32(v)) }

// WriteULongLong appends an unsigned 64-bit integer at 8-byte alignment.
func (e *Encoder) WriteULongLong(v uint64) {
	e.align(8)
	e.buf = e.order.appender().AppendUint64(e.buf, v)
}

// WriteLongLong appends a signed 64-bit integer at 8-byte alignment.
func (e *Encoder) WriteLongLong(v int64) { e.WriteULongLong(uint64(v)) }

// WriteFloat appends a 32-bit IEEE float at 4-byte alignment.
func (e *Encoder) WriteFloat(v float32) { e.WriteULong(math.Float32bits(v)) }

// WriteDouble appends a 64-bit IEEE float at 8-byte alignment.
func (e *Encoder) WriteDouble(v float64) { e.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: ULong length (including the
// terminating NUL), the bytes, and a NUL octet.
func (e *Encoder) WriteString(v string) {
	e.WriteULong(uint32(len(v) + 1))
	e.buf = append(e.buf, v...)
	e.buf = append(e.buf, 0)
}

// WriteOctets appends a CDR octet sequence: ULong length then raw bytes.
func (e *Encoder) WriteOctets(v []byte) {
	e.WriteULong(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// WriteRaw appends bytes without any length prefix or alignment. It is
// intended for splicing pre-encoded material (e.g. an encapsulation whose
// alignment has already been established).
func (e *Encoder) WriteRaw(v []byte) { e.buf = append(e.buf, v...) }

// BeginEncapsulation starts a nested encapsulation: a placeholder ULong
// length is written, followed by the byte-order flag octet, and alignment
// restarts at the flag octet. EndEncapsulation patches the length.
// Encapsulations may nest.
func (e *Encoder) BeginEncapsulation() (restore func()) {
	e.align(4)
	lenPos := len(e.buf)
	e.buf = append(e.buf, 0, 0, 0, 0) // placeholder length
	savedBase := e.base
	e.base = len(e.buf)
	e.WriteOctet(byte(e.order))
	return func() {
		n := len(e.buf) - e.base
		e.order.order().PutUint32(e.buf[lenPos:], uint32(n))
		e.base = savedBase
	}
}

// Decoder unmarshals values from a CDR buffer. Construct with NewDecoder.
type Decoder struct {
	buf   []byte
	pos   int
	order ByteOrder
	base  int
}

// NewDecoder returns a Decoder over buf using the given byte order.
func NewDecoder(buf []byte, order ByteOrder) *Decoder {
	return &Decoder{buf: buf, order: order}
}

// Order reports the byte order of the decoder.
func (d *Decoder) Order() ByteOrder { return d.order }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Pos returns the current read offset within the buffer.
func (d *Decoder) Pos() int { return d.pos }

// errTruncated constructs a decode error for a short buffer.
func errTruncated(what string) error {
	return fmt.Errorf("cdr: truncated buffer reading %s", what)
}

func (d *Decoder) align(n int) {
	rel := d.pos - d.base
	if pad := (n - rel%n) % n; pad > 0 {
		d.pos += pad
	}
}

func (d *Decoder) need(n int, what string) error {
	if d.pos+n > len(d.buf) {
		return errTruncated(what)
	}
	return nil
}

// ReadOctet consumes a single octet.
func (d *Decoder) ReadOctet() (byte, error) {
	if err := d.need(1, "octet"); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

// ReadBool consumes a boolean octet.
func (d *Decoder) ReadBool() (bool, error) {
	v, err := d.ReadOctet()
	if err != nil {
		return false, fmt.Errorf("cdr: reading bool: %w", err)
	}
	return v != 0, nil
}

// ReadChar consumes a character octet.
func (d *Decoder) ReadChar() (byte, error) { return d.ReadOctet() }

// ReadUShort consumes an unsigned 16-bit integer.
func (d *Decoder) ReadUShort() (uint16, error) {
	d.align(2)
	if err := d.need(2, "ushort"); err != nil {
		return 0, err
	}
	v := d.order.order().Uint16(d.buf[d.pos:])
	d.pos += 2
	return v, nil
}

// ReadShort consumes a signed 16-bit integer.
func (d *Decoder) ReadShort() (int16, error) {
	v, err := d.ReadUShort()
	return int16(v), err
}

// ReadULong consumes an unsigned 32-bit integer.
func (d *Decoder) ReadULong() (uint32, error) {
	d.align(4)
	if err := d.need(4, "ulong"); err != nil {
		return 0, err
	}
	v := d.order.order().Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// ReadLong consumes a signed 32-bit integer.
func (d *Decoder) ReadLong() (int32, error) {
	v, err := d.ReadULong()
	return int32(v), err
}

// ReadULongLong consumes an unsigned 64-bit integer.
func (d *Decoder) ReadULongLong() (uint64, error) {
	d.align(8)
	if err := d.need(8, "ulonglong"); err != nil {
		return 0, err
	}
	v := d.order.order().Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// ReadLongLong consumes a signed 64-bit integer.
func (d *Decoder) ReadLongLong() (int64, error) {
	v, err := d.ReadULongLong()
	return int64(v), err
}

// ReadFloat consumes a 32-bit IEEE float.
func (d *Decoder) ReadFloat() (float32, error) {
	v, err := d.ReadULong()
	return math.Float32frombits(v), err
}

// ReadDouble consumes a 64-bit IEEE float.
func (d *Decoder) ReadDouble() (float64, error) {
	v, err := d.ReadULongLong()
	return math.Float64frombits(v), err
}

// ReadString consumes a CDR string.
func (d *Decoder) ReadString() (string, error) {
	n, err := d.ReadULong()
	if err != nil {
		return "", fmt.Errorf("cdr: reading string length: %w", err)
	}
	if n == 0 {
		// Tolerate a zero length (no NUL) from lenient encoders.
		return "", nil
	}
	if n > maxStringLen {
		return "", fmt.Errorf("cdr: string length %d exceeds limit", n)
	}
	if err := d.need(int(n), "string body"); err != nil {
		return "", err
	}
	v := string(d.buf[d.pos : d.pos+int(n)-1])
	d.pos += int(n)
	return v, nil
}

// ReadOctets consumes a CDR octet sequence. The returned slice aliases the
// decoder's buffer and must be copied if retained.
func (d *Decoder) ReadOctets() ([]byte, error) {
	n, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("cdr: reading octet sequence length: %w", err)
	}
	if n > maxStringLen {
		return nil, fmt.Errorf("cdr: octet sequence length %d exceeds limit", n)
	}
	if err := d.need(int(n), "octet sequence body"); err != nil {
		return nil, err
	}
	v := d.buf[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return v, nil
}

// ReadRaw consumes n raw bytes without alignment. The returned slice
// aliases the decoder's buffer.
func (d *Decoder) ReadRaw(n int) ([]byte, error) {
	if err := d.need(n, "raw bytes"); err != nil {
		return nil, err
	}
	v := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return v, nil
}

// BeginEncapsulation consumes a nested encapsulation header (ULong length
// plus byte-order flag) and returns a Decoder scoped to the encapsulated
// bytes. The outer decoder is advanced past the encapsulation.
func (d *Decoder) BeginEncapsulation() (*Decoder, error) {
	body, err := d.ReadOctets()
	if err != nil {
		return nil, fmt.Errorf("cdr: reading encapsulation: %w", err)
	}
	if len(body) < 1 {
		return nil, errTruncated("encapsulation flag")
	}
	inner := NewDecoder(body, ByteOrder(body[0]&1))
	inner.pos = 1
	inner.base = 0
	return inner, nil
}
