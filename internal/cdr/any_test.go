package cdr

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTripAny(t *testing.T, a Any) Any {
	t.Helper()
	e := NewEncoder(BigEndian)
	if err := a.MarshalTyped(e); err != nil {
		t.Fatalf("marshal %v: %v", a, err)
	}
	d := NewDecoder(e.Bytes(), BigEndian)
	got, err := UnmarshalTypedAny(d)
	if err != nil {
		t.Fatalf("unmarshal %v: %v", a, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left after %v", d.Remaining(), a)
	}
	return got
}

func TestAnyPrimitivesRoundTrip(t *testing.T) {
	cases := []Any{
		Long(-5),
		ULong(5),
		LongLong(1 << 40),
		Double(3.25),
		Str("quality of service"),
		Bool(true),
		Octets([]byte{9, 8, 7}),
		NewAny(TCShort, int16(-2)),
		NewAny(TCUShort, uint16(2)),
		NewAny(TCOctet, byte(255)),
		NewAny(TCFloat, float32(1.5)),
		NewAny(TCULongLong, uint64(12345678901234)),
		NewAny(TCVoid, nil),
		NewAny(TCObjRef, "IOR:00"),
	}
	for _, a := range cases {
		got := roundTripAny(t, a)
		if !got.Type.Equal(a.Type) {
			t.Errorf("typecode mismatch: got %v want %v", got.Type, a.Type)
		}
		if !reflect.DeepEqual(got.Value, a.Value) {
			t.Errorf("value mismatch for %v: got %#v want %#v", a.Type, got.Value, a.Value)
		}
	}
}

func TestAnyStructRoundTrip(t *testing.T) {
	tc := StructOf("QoSParam",
		Field{Name: "name", Type: TCString},
		Field{Name: "value", Type: TCDouble},
		Field{Name: "hard", Type: TCBoolean},
	)
	a := NewAny(tc, map[string]Any{
		"name":  Str("latency"),
		"value": Double(12.5),
		"hard":  Bool(true),
	})
	got := roundTripAny(t, a)
	m, ok := got.Value.(map[string]Any)
	if !ok {
		t.Fatalf("got %T", got.Value)
	}
	if m["name"].Value != "latency" || m["value"].Value != 12.5 || m["hard"].Value != true {
		t.Fatalf("struct fields = %v", m)
	}
}

func TestAnySequenceRoundTrip(t *testing.T) {
	tc := SequenceOf(TCString)
	a := NewAny(tc, []Any{Str("a"), Str("b"), Str("c")})
	got := roundTripAny(t, a)
	elems, ok := got.Value.([]Any)
	if !ok || len(elems) != 3 {
		t.Fatalf("got %#v", got.Value)
	}
	for i, want := range []string{"a", "b", "c"} {
		if elems[i].Value != want {
			t.Fatalf("element %d = %v", i, elems[i])
		}
	}
}

func TestAnyNestedAny(t *testing.T) {
	inner := Str("nested")
	a := NewAny(TCAny, &inner)
	got := roundTripAny(t, a)
	ptr, ok := got.Value.(*Any)
	if !ok {
		t.Fatalf("got %T", got.Value)
	}
	if ptr.Value != "nested" {
		t.Fatalf("inner = %v", ptr.Value)
	}
}

func TestAnyEnumRoundTrip(t *testing.T) {
	tc := EnumOf("Direction", "IN", "OUT", "INOUT")
	a := NewAny(tc, uint32(2))
	got := roundTripAny(t, a)
	if got.Value != uint32(2) {
		t.Fatalf("enum = %v", got.Value)
	}
	// Out-of-range ordinal must be rejected on both paths.
	bad := NewAny(tc, uint32(7))
	e := NewEncoder(BigEndian)
	if err := bad.MarshalTyped(e); err == nil {
		t.Fatal("out-of-range enum marshalled")
	}
	e = NewEncoder(BigEndian)
	tc.Marshal(e)
	e.WriteULong(9)
	if _, err := UnmarshalTypedAny(NewDecoder(e.Bytes(), BigEndian)); err == nil {
		t.Fatal("out-of-range enum unmarshalled")
	}
}

func TestAnyTypeMismatch(t *testing.T) {
	bad := NewAny(TCLong, "not a long")
	e := NewEncoder(BigEndian)
	if err := bad.MarshalTyped(e); err == nil {
		t.Fatal("type mismatch not detected")
	}
}

func TestStructMissingField(t *testing.T) {
	tc := StructOf("S", Field{Name: "x", Type: TCLong})
	a := NewAny(tc, map[string]Any{})
	e := NewEncoder(BigEndian)
	if err := a.MarshalTyped(e); err == nil {
		t.Fatal("missing field not detected")
	}
}

func TestTypeCodeEqual(t *testing.T) {
	s1 := StructOf("S", Field{Name: "x", Type: TCLong})
	s2 := StructOf("S", Field{Name: "x", Type: TCLong})
	s3 := StructOf("S", Field{Name: "x", Type: TCDouble})
	s4 := StructOf("T", Field{Name: "x", Type: TCLong})
	if !s1.Equal(s2) {
		t.Error("identical structs not equal")
	}
	if s1.Equal(s3) {
		t.Error("different field types equal")
	}
	if s1.Equal(s4) {
		t.Error("different names equal")
	}
	if !SequenceOf(TCLong).Equal(SequenceOf(TCLong)) {
		t.Error("identical sequences not equal")
	}
	if SequenceOf(TCLong).Equal(SequenceOf(TCShort)) {
		t.Error("different sequences equal")
	}
	if TCLong.Equal(TCULong) {
		t.Error("long equals ulong")
	}
	if !EnumOf("E", "A").Equal(EnumOf("E", "A")) {
		t.Error("identical enums not equal")
	}
	if EnumOf("E", "A").Equal(EnumOf("E", "B")) {
		t.Error("different enums equal")
	}
}

func TestTypeCodeString(t *testing.T) {
	tc := StructOf("P", Field{Name: "n", Type: TCString}, Field{Name: "v", Type: SequenceOf(TCDouble)})
	want := "struct P {string n; sequence<double> v}"
	if got := tc.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := EnumOf("E", "A", "B").String(); got != "enum E {A, B}" {
		t.Fatalf("enum String() = %q", got)
	}
}

func TestTypeCodeRoundTripProperty(t *testing.T) {
	// Generate random nested TypeCodes from a seed and verify
	// marshal/unmarshal identity.
	prims := []*TypeCode{TCOctet, TCBoolean, TCShort, TCUShort, TCLong, TCULong,
		TCLongLong, TCULongLong, TCFloat, TCDouble, TCString, TCObjRef, TCVoid, TCAny}
	var build func(seed uint64, depth int) *TypeCode
	build = func(seed uint64, depth int) *TypeCode {
		pick := seed % 17
		if depth > 3 || pick < 10 {
			return prims[seed%uint64(len(prims))]
		}
		switch pick {
		case 10, 11, 12:
			return SequenceOf(build(seed/17, depth+1))
		case 13, 14:
			n := int(seed%3) + 1
			fields := make([]Field, n)
			for i := range fields {
				fields[i] = Field{
					Name: string(rune('a' + i)),
					Type: build(seed/uint64(7+i), depth+1),
				}
			}
			return StructOf("S", fields...)
		default:
			return EnumOf("E", "A", "B", "C")
		}
	}
	f := func(seed uint64) bool {
		tc := build(seed, 0)
		e := NewEncoder(LittleEndian)
		tc.Marshal(e)
		got, err := UnmarshalTypeCode(NewDecoder(e.Bytes(), LittleEndian))
		if err != nil {
			return false
		}
		return got.Equal(tc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeCodeDepthLimit(t *testing.T) {
	tc := TCLong
	for i := 0; i < maxTypeCodeDepth+4; i++ {
		tc = SequenceOf(tc)
	}
	e := NewEncoder(BigEndian)
	tc.Marshal(e)
	if _, err := UnmarshalTypeCode(NewDecoder(e.Bytes(), BigEndian)); err == nil {
		t.Fatal("deep typecode accepted")
	}
}

func TestOctetSequenceCopies(t *testing.T) {
	e := NewEncoder(BigEndian)
	if err := Octets([]byte{1, 2, 3}).MarshalTyped(e); err != nil {
		t.Fatal(err)
	}
	buf := e.Bytes()
	d := NewDecoder(buf, BigEndian)
	got, err := UnmarshalTypedAny(d)
	if err != nil {
		t.Fatal(err)
	}
	b := got.Value.([]byte)
	// Mutating the source buffer must not change the decoded value.
	for i := range buf {
		buf[i] = 0xEE
	}
	if !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("decoded octets alias the wire buffer: %v", b)
	}
}
