package cdr

import (
	"fmt"
)

// Any is a self-describing value: a TypeCode plus a Go representation of
// the value. The Go representations are:
//
//	void                nil
//	octet, char         byte
//	boolean             bool
//	short               int16          unsigned short   uint16
//	long                int32          unsigned long    uint32
//	long long           int64          unsigned long long uint64
//	float               float32        double           float64
//	string              string
//	sequence<octet>     []byte
//	sequence<T>         []Any (element TypeCodes must equal T)
//	struct              map[string]Any keyed by field name
//	enum                uint32 (ordinal)
//	any                 *Any
//	Object              string (stringified object reference)
type Any struct {
	Type  *TypeCode
	Value any
}

// NewAny wraps a Go value with its TypeCode.
func NewAny(tc *TypeCode, v any) Any { return Any{Type: tc, Value: v} }

// Convenience constructors for common primitive Anys.

// Long returns an Any holding a signed 32-bit integer.
func Long(v int32) Any { return Any{Type: TCLong, Value: v} }

// ULong returns an Any holding an unsigned 32-bit integer.
func ULong(v uint32) Any { return Any{Type: TCULong, Value: v} }

// LongLong returns an Any holding a signed 64-bit integer.
func LongLong(v int64) Any { return Any{Type: TCLongLong, Value: v} }

// Double returns an Any holding a 64-bit float.
func Double(v float64) Any { return Any{Type: TCDouble, Value: v} }

// Str returns an Any holding a string.
func Str(v string) Any { return Any{Type: TCString, Value: v} }

// Bool returns an Any holding a boolean.
func Bool(v bool) Any { return Any{Type: TCBoolean, Value: v} }

// Octets returns an Any holding an octet sequence.
func Octets(v []byte) Any { return Any{Type: SequenceOf(TCOctet), Value: v} }

// String renders the Any for diagnostics.
func (a Any) String() string { return fmt.Sprintf("%v: %v", a.Type, a.Value) }

// Marshal writes the value (not the TypeCode) onto the encoder following
// the layout dictated by the TypeCode.
func (a Any) Marshal(e *Encoder) error {
	return marshalValue(e, a.Type, a.Value)
}

// MarshalTyped writes TypeCode and value, so the peer can decode without
// prior knowledge.
func (a Any) MarshalTyped(e *Encoder) error {
	if a.Type == nil {
		return fmt.Errorf("cdr: any without typecode")
	}
	a.Type.Marshal(e)
	return a.Marshal(e)
}

// UnmarshalTypedAny reads a TypeCode-prefixed Any written by MarshalTyped.
func UnmarshalTypedAny(d *Decoder) (Any, error) {
	tc, err := UnmarshalTypeCode(d)
	if err != nil {
		return Any{}, err
	}
	v, err := unmarshalValue(d, tc)
	if err != nil {
		return Any{}, err
	}
	return Any{Type: tc, Value: v}, nil
}

// UnmarshalAny reads a bare value of the given TypeCode.
func UnmarshalAny(d *Decoder, tc *TypeCode) (Any, error) {
	v, err := unmarshalValue(d, tc)
	if err != nil {
		return Any{}, err
	}
	return Any{Type: tc, Value: v}, nil
}

func typeMismatch(tc *TypeCode, v any) error {
	return fmt.Errorf("cdr: value %T does not match typecode %v", v, tc)
}

func marshalValue(e *Encoder, tc *TypeCode, v any) error {
	if tc == nil {
		return fmt.Errorf("cdr: marshalling value without typecode")
	}
	switch tc.Kind() {
	case KindVoid:
		return nil
	case KindOctet, KindChar:
		b, ok := v.(byte)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteOctet(b)
	case KindBoolean:
		b, ok := v.(bool)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteBool(b)
	case KindShort:
		x, ok := v.(int16)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteShort(x)
	case KindUShort:
		x, ok := v.(uint16)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteUShort(x)
	case KindLong:
		x, ok := v.(int32)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteLong(x)
	case KindULong:
		x, ok := v.(uint32)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteULong(x)
	case KindLongLong:
		x, ok := v.(int64)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteLongLong(x)
	case KindULongLong:
		x, ok := v.(uint64)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteULongLong(x)
	case KindFloat:
		x, ok := v.(float32)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteFloat(x)
	case KindDouble:
		x, ok := v.(float64)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteDouble(x)
	case KindString, KindObjRef:
		s, ok := v.(string)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteString(s)
	case KindEnum:
		x, ok := v.(uint32)
		if !ok {
			return typeMismatch(tc, v)
		}
		if int(x) >= len(tc.Members()) {
			return fmt.Errorf("cdr: enum %s ordinal %d out of range", tc.Name(), x)
		}
		e.WriteULong(x)
	case KindSequence:
		if tc.Elem().Kind() == KindOctet {
			b, ok := v.([]byte)
			if !ok {
				return typeMismatch(tc, v)
			}
			e.WriteOctets(b)
			return nil
		}
		elems, ok := v.([]Any)
		if !ok {
			return typeMismatch(tc, v)
		}
		e.WriteULong(uint32(len(elems)))
		for i, el := range elems {
			if err := marshalValue(e, tc.Elem(), el.Value); err != nil {
				return fmt.Errorf("cdr: sequence element %d: %w", i, err)
			}
		}
	case KindStruct:
		m, ok := v.(map[string]Any)
		if !ok {
			return typeMismatch(tc, v)
		}
		for _, f := range tc.Fields() {
			fv, ok := m[f.Name]
			if !ok {
				return fmt.Errorf("cdr: struct %s missing field %q", tc.Name(), f.Name)
			}
			if err := marshalValue(e, f.Type, fv.Value); err != nil {
				return fmt.Errorf("cdr: struct %s field %q: %w", tc.Name(), f.Name, err)
			}
		}
	case KindAny:
		inner, ok := v.(*Any)
		if !ok {
			return typeMismatch(tc, v)
		}
		return inner.MarshalTyped(e)
	default:
		return fmt.Errorf("cdr: cannot marshal kind %v", tc.Kind())
	}
	return nil
}

func unmarshalValue(d *Decoder, tc *TypeCode) (any, error) {
	switch tc.Kind() {
	case KindVoid:
		return nil, nil
	case KindOctet, KindChar:
		return d.ReadOctet()
	case KindBoolean:
		return d.ReadBool()
	case KindShort:
		return d.ReadShort()
	case KindUShort:
		return d.ReadUShort()
	case KindLong:
		return d.ReadLong()
	case KindULong:
		return d.ReadULong()
	case KindLongLong:
		return d.ReadLongLong()
	case KindULongLong:
		return d.ReadULongLong()
	case KindFloat:
		return d.ReadFloat()
	case KindDouble:
		return d.ReadDouble()
	case KindString, KindObjRef:
		return d.ReadString()
	case KindEnum:
		x, err := d.ReadULong()
		if err != nil {
			return nil, err
		}
		if int(x) >= len(tc.Members()) {
			return nil, fmt.Errorf("cdr: enum %s ordinal %d out of range", tc.Name(), x)
		}
		return x, nil
	case KindSequence:
		if tc.Elem().Kind() == KindOctet {
			b, err := d.ReadOctets()
			if err != nil {
				return nil, err
			}
			// Copy: decoder buffers are transient.
			out := make([]byte, len(b))
			copy(out, b)
			return out, nil
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("cdr: reading sequence length: %w", err)
		}
		if int64(n) > int64(d.Remaining()) {
			return nil, fmt.Errorf("cdr: sequence length %d exceeds remaining %d bytes", n, d.Remaining())
		}
		elems := make([]Any, 0, n)
		for i := uint32(0); i < n; i++ {
			v, err := unmarshalValue(d, tc.Elem())
			if err != nil {
				return nil, fmt.Errorf("cdr: sequence element %d: %w", i, err)
			}
			elems = append(elems, Any{Type: tc.Elem(), Value: v})
		}
		return elems, nil
	case KindStruct:
		m := make(map[string]Any, len(tc.Fields()))
		for _, f := range tc.Fields() {
			v, err := unmarshalValue(d, f.Type)
			if err != nil {
				return nil, fmt.Errorf("cdr: struct %s field %q: %w", tc.Name(), f.Name, err)
			}
			m[f.Name] = Any{Type: f.Type, Value: v}
		}
		return m, nil
	case KindAny:
		inner, err := UnmarshalTypedAny(d)
		if err != nil {
			return nil, err
		}
		return &inner, nil
	default:
		return nil, fmt.Errorf("cdr: cannot unmarshal kind %v", tc.Kind())
	}
}
