// Package cdr implements a Common Data Representation (CDR) style
// marshalling format as used by GIOP-based object request brokers.
//
// CDR encodes primitive types at their natural alignment, measured from
// the beginning of the encapsulated buffer. Both big-endian and
// little-endian byte orders are supported; the byte order of an
// encapsulation is carried out of band (in GIOP message headers, or in
// the leading flag octet of an encapsulated octet sequence).
//
// The package provides three layers:
//
//   - Encoder and Decoder: streaming primitive marshalling with CDR
//     alignment rules (strings carry a length-prefixed, NUL-terminated
//     representation; sequences carry a ULong element count).
//   - TypeCode: a runtime description of a CDR type, sufficient for the
//     dynamic invocation interface to marshal values it has never seen a
//     stub for.
//   - Any: a self-describing value (TypeCode plus Go value) that can be
//     marshalled and unmarshalled generically.
//
// The format implemented here is CDR in structure (alignment, encoding of
// each primitive) but is not wire-compatible with any particular ORB
// product; see DESIGN.md for the substitution rationale.
package cdr
