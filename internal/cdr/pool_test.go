package cdr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestAcquireEncoderEmpty(t *testing.T) {
	for i := 0; i < 8; i++ {
		e := AcquireEncoder(LittleEndian)
		if e.Len() != 0 {
			t.Fatalf("iteration %d: acquired encoder has Len() = %d, want 0", i, e.Len())
		}
		if e.Order() != LittleEndian {
			t.Fatalf("iteration %d: acquired encoder order = %v", i, e.Order())
		}
		e.WriteString("dirty the buffer")
		e.Release()
	}
}

func TestReleaseNilEncoder(t *testing.T) {
	var e *Encoder
	e.Release() // must not panic
}

// TestReleaseNoAliasing checks the ownership rule documented on Release:
// bytes copied out of an encoder before Release stay intact however the
// recycled encoder is reused, because consumers copy rather than alias.
func TestReleaseNoAliasing(t *testing.T) {
	e := AcquireEncoder(BigEndian)
	e.WriteString("first frame payload")
	kept := append([]byte(nil), e.Bytes()...)
	e.Release()

	// Reuse the pooled encoder (likely the same backing array) with
	// different contents of the same length.
	for i := 0; i < 4; i++ {
		e2 := AcquireEncoder(BigEndian)
		e2.WriteString("XXXXX frame payload")
		e2.Release()
	}

	d := NewDecoder(kept, BigEndian)
	got, err := d.ReadString()
	if err != nil {
		t.Fatal(err)
	}
	if got != "first frame payload" {
		t.Fatalf("copied bytes changed after pool reuse: %q", got)
	}
}

// TestReleaseDropsOversizedBuffer verifies that a buffer grown past
// maxPooledCapacity is not pinned by the pool: encoders coming out of
// AcquireEncoder never carry a larger backing array.
func TestReleaseDropsOversizedBuffer(t *testing.T) {
	e := AcquireEncoder(BigEndian)
	e.WriteOctets(make([]byte, maxPooledCapacity+1))
	e.Release()
	for i := 0; i < 16; i++ {
		e := AcquireEncoder(BigEndian)
		if cap(e.buf) > maxPooledCapacity {
			t.Fatalf("acquired encoder carries %d-byte buffer, cap is %d", cap(e.buf), maxPooledCapacity)
		}
		e.Release()
	}
}

func TestSkipReservesPrefix(t *testing.T) {
	e := AcquireEncoder(BigEndian)
	defer e.Release()
	e.Skip(12)
	// Alignment must restart after the reserved prefix: the first ULong
	// lands immediately at offset 12, not padded to the next multiple of 4
	// of some other base.
	e.WriteOctet(0xAA)
	e.WriteULong(7)
	want := append(make([]byte, 12), 0xAA, 0, 0, 0, 0, 0, 0, 7)
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("encoded = %x, want %x", e.Bytes(), want)
	}
	// Large skips cross the zero-chunk boundary.
	e2 := AcquireEncoder(BigEndian)
	defer e2.Release()
	e2.Skip(200)
	if e2.Len() != 200 {
		t.Fatalf("Skip(200) produced %d bytes", e2.Len())
	}
	for i, b := range e2.Bytes() {
		if b != 0 {
			t.Fatalf("Skip left nonzero byte at %d", i)
		}
	}
}

// TestConcurrentPoolIntegrity hammers the pool from many goroutines, each
// verifying that the encoder it holds only ever contains its own writes.
// Run with -race to catch sharing bugs.
func TestConcurrentPoolIntegrity(t *testing.T) {
	const goroutines = 8
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			payload := fmt.Sprintf("goroutine %d payload", id)
			for i := 0; i < rounds; i++ {
				e := AcquireEncoder(LittleEndian)
				e.WriteString(payload)
				e.WriteULong(uint32(i))
				d := NewDecoder(e.Bytes(), LittleEndian)
				s, err := d.ReadString()
				if err != nil || s != payload {
					t.Errorf("goroutine %d round %d: read %q, %v", id, i, s, err)
					e.Release()
					return
				}
				n, err := d.ReadULong()
				if err != nil || n != uint32(i) {
					t.Errorf("goroutine %d round %d: counter %d, %v", id, i, n, err)
					e.Release()
					return
				}
				e.Release()
			}
		}(g)
	}
	wg.Wait()
}

// TestEncodeDecodeAllocs is the alloc-regression gate for the marshalling
// core: a pooled encode of a typical request body plus a decode pass must
// stay within a small constant allocation budget (the decoder value, the
// decoded string, and the decoded octet copy). See docs/PERFORMANCE.md.
func TestEncodeDecodeAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	avg := testing.AllocsPerRun(200, func() {
		e := AcquireEncoder(BigEndian)
		e.WriteString("echo")
		e.WriteULong(42)
		e.WriteOctets(payload)
		d := NewDecoder(e.Bytes(), BigEndian)
		if _, err := d.ReadString(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadULong(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.ReadOctets(); err != nil {
			t.Fatal(err)
		}
		e.Release()
	})
	const maxAllocs = 4
	if avg > maxAllocs {
		t.Fatalf("encode-decode round trip allocates %.1f objects/op, budget is %d", avg, maxAllocs)
	}
}

func BenchmarkEncoderPooled(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := AcquireEncoder(BigEndian)
		e.WriteString("echo")
		e.WriteOctets(payload)
		e.Release()
	}
}

func BenchmarkEncoderUnpooled(b *testing.B) {
	payload := bytes.Repeat([]byte{0x5A}, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(BigEndian)
		e.WriteString("echo")
		e.WriteOctets(payload)
		_ = e.Bytes()
	}
}
