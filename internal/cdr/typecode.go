package cdr

import (
	"fmt"
	"strings"
)

// Kind enumerates the CDR type constructors understood by the dynamic
// layer. The numeric values are stable and appear on the wire inside
// marshalled TypeCodes and Anys.
type Kind uint32

// Type kinds.
const (
	KindVoid Kind = iota + 1
	KindOctet
	KindBoolean
	KindChar
	KindShort
	KindUShort
	KindLong
	KindULong
	KindLongLong
	KindULongLong
	KindFloat
	KindDouble
	KindString
	KindSequence
	KindStruct
	KindEnum
	KindAny
	KindObjRef
)

var kindNames = map[Kind]string{
	KindVoid:      "void",
	KindOctet:     "octet",
	KindBoolean:   "boolean",
	KindChar:      "char",
	KindShort:     "short",
	KindUShort:    "unsigned short",
	KindLong:      "long",
	KindULong:     "unsigned long",
	KindLongLong:  "long long",
	KindULongLong: "unsigned long long",
	KindFloat:     "float",
	KindDouble:    "double",
	KindString:    "string",
	KindSequence:  "sequence",
	KindStruct:    "struct",
	KindEnum:      "enum",
	KindAny:       "any",
	KindObjRef:    "Object",
}

// String returns the IDL spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint32(k))
}

// Field describes one member of a struct TypeCode.
type Field struct {
	Name string
	Type *TypeCode
}

// TypeCode is a runtime description of a marshallable type. TypeCodes are
// immutable after construction; the package-level constructors share
// singletons for primitive kinds.
type TypeCode struct {
	kind Kind
	// name holds the repository-local name for struct, enum and objref
	// kinds; empty otherwise.
	name string
	// elem is the element type for sequences.
	elem *TypeCode
	// fields are the members of a struct.
	fields []Field
	// members are the labels of an enum.
	members []string
}

var primitives = map[Kind]*TypeCode{}

func primitive(k Kind) *TypeCode {
	if tc, ok := primitives[k]; ok {
		return tc
	}
	tc := &TypeCode{kind: k}
	primitives[k] = tc
	return tc
}

// Primitive TypeCode singletons.
var (
	TCVoid      = primitive(KindVoid)
	TCOctet     = primitive(KindOctet)
	TCBoolean   = primitive(KindBoolean)
	TCChar      = primitive(KindChar)
	TCShort     = primitive(KindShort)
	TCUShort    = primitive(KindUShort)
	TCLong      = primitive(KindLong)
	TCULong     = primitive(KindULong)
	TCLongLong  = primitive(KindLongLong)
	TCULongLong = primitive(KindULongLong)
	TCFloat     = primitive(KindFloat)
	TCDouble    = primitive(KindDouble)
	TCString    = primitive(KindString)
	TCAny       = primitive(KindAny)
	TCObjRef    = primitive(KindObjRef)
)

// SequenceOf returns the TypeCode of an unbounded sequence of elem.
func SequenceOf(elem *TypeCode) *TypeCode {
	return &TypeCode{kind: KindSequence, elem: elem}
}

// StructOf returns the TypeCode of a struct with the given name and fields.
func StructOf(name string, fields ...Field) *TypeCode {
	return &TypeCode{kind: KindStruct, name: name, fields: fields}
}

// EnumOf returns the TypeCode of an enum with the given name and labels.
func EnumOf(name string, members ...string) *TypeCode {
	return &TypeCode{kind: KindEnum, name: name, members: members}
}

// Kind reports the type constructor.
func (tc *TypeCode) Kind() Kind { return tc.kind }

// Name reports the declared name for struct, enum and objref kinds.
func (tc *TypeCode) Name() string { return tc.name }

// Elem reports the element type of a sequence, or nil.
func (tc *TypeCode) Elem() *TypeCode { return tc.elem }

// Fields reports the struct members. The returned slice must not be
// mutated.
func (tc *TypeCode) Fields() []Field { return tc.fields }

// Members reports the enum labels. The returned slice must not be mutated.
func (tc *TypeCode) Members() []string { return tc.members }

// Equal reports structural equality of two TypeCodes.
func (tc *TypeCode) Equal(other *TypeCode) bool {
	if tc == other {
		return true
	}
	if tc == nil || other == nil || tc.kind != other.kind || tc.name != other.name {
		return false
	}
	switch tc.kind {
	case KindSequence:
		return tc.elem.Equal(other.elem)
	case KindStruct:
		if len(tc.fields) != len(other.fields) {
			return false
		}
		for i, f := range tc.fields {
			if f.Name != other.fields[i].Name || !f.Type.Equal(other.fields[i].Type) {
				return false
			}
		}
		return true
	case KindEnum:
		if len(tc.members) != len(other.members) {
			return false
		}
		for i, m := range tc.members {
			if m != other.members[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the TypeCode in IDL-like syntax.
func (tc *TypeCode) String() string {
	if tc == nil {
		return "<nil>"
	}
	switch tc.kind {
	case KindSequence:
		return fmt.Sprintf("sequence<%s>", tc.elem)
	case KindStruct:
		var b strings.Builder
		fmt.Fprintf(&b, "struct %s {", tc.name)
		for i, f := range tc.fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
		}
		b.WriteString("}")
		return b.String()
	case KindEnum:
		return fmt.Sprintf("enum %s {%s}", tc.name, strings.Join(tc.members, ", "))
	default:
		return tc.kind.String()
	}
}

// Marshal writes the TypeCode itself onto the encoder so a peer can
// reconstruct it (used by Any).
func (tc *TypeCode) Marshal(e *Encoder) {
	e.WriteULong(uint32(tc.kind))
	switch tc.kind {
	case KindSequence:
		tc.elem.Marshal(e)
	case KindStruct:
		e.WriteString(tc.name)
		e.WriteULong(uint32(len(tc.fields)))
		for _, f := range tc.fields {
			e.WriteString(f.Name)
			f.Type.Marshal(e)
		}
	case KindEnum:
		e.WriteString(tc.name)
		e.WriteULong(uint32(len(tc.members)))
		for _, m := range tc.members {
			e.WriteString(m)
		}
	}
}

// maxTypeCodeDepth bounds recursion while unmarshalling TypeCodes so a
// malicious buffer cannot overflow the stack.
const maxTypeCodeDepth = 32

// UnmarshalTypeCode reads a TypeCode previously written by Marshal.
func UnmarshalTypeCode(d *Decoder) (*TypeCode, error) {
	return unmarshalTypeCode(d, 0)
}

func unmarshalTypeCode(d *Decoder, depth int) (*TypeCode, error) {
	if depth > maxTypeCodeDepth {
		return nil, fmt.Errorf("cdr: typecode nesting exceeds %d", maxTypeCodeDepth)
	}
	raw, err := d.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("cdr: reading typecode kind: %w", err)
	}
	kind := Kind(raw)
	if tc, ok := primitives[kind]; ok {
		return tc, nil
	}
	switch kind {
	case KindSequence:
		elem, err := unmarshalTypeCode(d, depth+1)
		if err != nil {
			return nil, err
		}
		return SequenceOf(elem), nil
	case KindStruct:
		name, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("cdr: reading struct typecode name: %w", err)
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("cdr: reading struct typecode arity: %w", err)
		}
		if n > 4096 {
			return nil, fmt.Errorf("cdr: struct typecode arity %d exceeds limit", n)
		}
		fields := make([]Field, 0, n)
		for i := uint32(0); i < n; i++ {
			fname, err := d.ReadString()
			if err != nil {
				return nil, fmt.Errorf("cdr: reading struct field name: %w", err)
			}
			ftc, err := unmarshalTypeCode(d, depth+1)
			if err != nil {
				return nil, err
			}
			fields = append(fields, Field{Name: fname, Type: ftc})
		}
		return StructOf(name, fields...), nil
	case KindEnum:
		name, err := d.ReadString()
		if err != nil {
			return nil, fmt.Errorf("cdr: reading enum typecode name: %w", err)
		}
		n, err := d.ReadULong()
		if err != nil {
			return nil, fmt.Errorf("cdr: reading enum typecode arity: %w", err)
		}
		if n > 4096 {
			return nil, fmt.Errorf("cdr: enum typecode arity %d exceeds limit", n)
		}
		members := make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			m, err := d.ReadString()
			if err != nil {
				return nil, fmt.Errorf("cdr: reading enum member: %w", err)
			}
			members = append(members, m)
		}
		return EnumOf(name, members...), nil
	default:
		return nil, fmt.Errorf("cdr: unknown typecode kind %d", raw)
	}
}
