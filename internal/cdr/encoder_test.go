package cdr

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAlignmentPadding(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(0xAA)
	e.WriteULong(1) // must pad 3 octets to offset 4
	if got, want := e.Len(), 8; got != want {
		t.Fatalf("encoded length = %d, want %d", got, want)
	}
	want := []byte{0xAA, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("encoded bytes = %x, want %x", e.Bytes(), want)
	}
}

func TestAlignment8(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(1)
	e.WriteDouble(1.0) // pads to offset 8
	if got, want := e.Len(), 16; got != want {
		t.Fatalf("encoded length = %d, want %d", got, want)
	}
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	v, err := d.ReadDouble()
	if err != nil {
		t.Fatal(err)
	}
	if v != 1.0 {
		t.Fatalf("double = %v, want 1.0", v)
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", "motörhead ünïcode", string(make([]byte, 1000))} {
		for _, order := range []ByteOrder{BigEndian, LittleEndian} {
			e := NewEncoder(order)
			e.WriteString(s)
			d := NewDecoder(e.Bytes(), order)
			got, err := d.ReadString()
			if err != nil {
				t.Fatalf("order %v: %v", order, err)
			}
			if got != s {
				t.Fatalf("order %v: round trip = %q, want %q", order, got, s)
			}
			if d.Remaining() != 0 {
				t.Fatalf("order %v: %d bytes left over", order, d.Remaining())
			}
		}
	}
}

func TestPrimitiveRoundTripProperty(t *testing.T) {
	type record struct {
		O   byte
		B   bool
		S   int16
		US  uint16
		L   int32
		UL  uint32
		LL  int64
		UL2 uint64
		F   float32
		D   float64
		St  string
		By  []byte
	}
	f := func(r record, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		e := NewEncoder(order)
		e.WriteOctet(r.O)
		e.WriteBool(r.B)
		e.WriteShort(r.S)
		e.WriteUShort(r.US)
		e.WriteLong(r.L)
		e.WriteULong(r.UL)
		e.WriteLongLong(r.LL)
		e.WriteULongLong(r.UL2)
		e.WriteFloat(r.F)
		e.WriteDouble(r.D)
		e.WriteString(r.St)
		e.WriteOctets(r.By)

		d := NewDecoder(e.Bytes(), order)
		o, _ := d.ReadOctet()
		b, _ := d.ReadBool()
		s, _ := d.ReadShort()
		us, _ := d.ReadUShort()
		l, _ := d.ReadLong()
		ul, _ := d.ReadULong()
		ll, _ := d.ReadLongLong()
		ul2, _ := d.ReadULongLong()
		fl, _ := d.ReadFloat()
		db, _ := d.ReadDouble()
		st, _ := d.ReadString()
		by, err := d.ReadOctets()
		if err != nil {
			return false
		}
		floatEq := func(a, b float32) bool {
			return a == b || (math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
		}
		doubleEq := func(a, b float64) bool {
			return a == b || (math.IsNaN(a) && math.IsNaN(b))
		}
		return o == r.O && b == r.B && s == r.S && us == r.US && l == r.L &&
			ul == r.UL && ll == r.LL && ul2 == r.UL2 &&
			floatEq(fl, r.F) && doubleEq(db, r.D) &&
			st == r.St && bytes.Equal(by, r.By) && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedBuffers(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteString("payload string")
	e.WriteULong(42)
	full := e.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for n := 0; n < len(full); n++ {
		d := NewDecoder(full[:n], BigEndian)
		_, err1 := d.ReadString()
		_, err2 := d.ReadULong()
		if err1 == nil && err2 == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
}

func TestStringLengthLimit(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteULong(1 << 30) // absurd length, no body
	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadString(); err == nil {
		t.Fatal("oversized string length accepted")
	}
	d = NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctets(); err == nil {
		t.Fatal("oversized octet sequence length accepted")
	}
}

func TestEncapsulationRestartsAlignment(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteOctet(0xFF) // misalign the outer stream
	end := e.BeginEncapsulation()
	e.WriteULong(7) // aligned relative to encapsulation start
	e.WriteString("inner")
	end()
	e.WriteULong(99) // outer value after the encapsulation

	d := NewDecoder(e.Bytes(), BigEndian)
	if _, err := d.ReadOctet(); err != nil {
		t.Fatal(err)
	}
	inner, err := d.BeginEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	v, err := inner.ReadULong()
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("inner ulong = %d, want 7", v)
	}
	s, err := inner.ReadString()
	if err != nil {
		t.Fatal(err)
	}
	if s != "inner" {
		t.Fatalf("inner string = %q", s)
	}
	outer, err := d.ReadULong()
	if err != nil {
		t.Fatal(err)
	}
	if outer != 99 {
		t.Fatalf("outer ulong = %d, want 99", outer)
	}
}

func TestNestedEncapsulation(t *testing.T) {
	e := NewEncoder(LittleEndian)
	end1 := e.BeginEncapsulation()
	e.WriteString("level1")
	end2 := e.BeginEncapsulation()
	e.WriteString("level2")
	end2()
	end1()

	d := NewDecoder(e.Bytes(), LittleEndian)
	d1, err := d.BeginEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d1.ReadString()
	if err != nil || s1 != "level1" {
		t.Fatalf("level1 = %q, %v", s1, err)
	}
	d2, err := d1.BeginEncapsulation()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.ReadString()
	if err != nil || s2 != "level2" {
		t.Fatalf("level2 = %q, %v", s2, err)
	}
}

func TestDecoderReadRaw(t *testing.T) {
	e := NewEncoder(BigEndian)
	e.WriteRaw([]byte{1, 2, 3})
	d := NewDecoder(e.Bytes(), BigEndian)
	got, err := d.ReadRaw(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("raw = %v", got)
	}
	if _, err := d.ReadRaw(1); err == nil {
		t.Fatal("read past end succeeded")
	}
}
