package cdr

import (
	"sync"
	"sync/atomic"
)

// maxPooledCapacity caps the buffer capacity an Encoder may carry back into
// the pool. Occasional giant payloads (fragmented bulk transfers) would
// otherwise pin megabytes of idle memory under steady small-message load.
const maxPooledCapacity = 64 << 10

// Pool telemetry, process-global like the pool itself. A Get that fell
// through to the pool's New is a miss (hits = gets − misses); Oversize
// counts buffers discarded at Release for exceeding maxPooledCapacity.
// cdr must stay free of an obs dependency, so these are plain atomics
// that the ORB layer re-exports as callback instruments.
var (
	poolGets     atomic.Uint64
	poolMisses   atomic.Uint64
	poolOversize atomic.Uint64
)

// EncoderPoolStats is a point-in-time copy of the pool counters.
type EncoderPoolStats struct {
	Gets     uint64
	Misses   uint64
	Oversize uint64
}

// PoolStats reports cumulative encoder pool activity.
func PoolStats() EncoderPoolStats {
	return EncoderPoolStats{
		Gets:     poolGets.Load(),
		Misses:   poolMisses.Load(),
		Oversize: poolOversize.Load(),
	}
}

// encoderPool recycles Encoders across invocations. The invocation hot path
// (request marshalling, reply marshalling, service-context encoding) builds
// and discards one or more encoders per call; recycling them removes the
// dominant per-call allocations.
var encoderPool = sync.Pool{New: func() any {
	poolMisses.Add(1)
	return new(Encoder)
}}

// AcquireEncoder returns an empty pooled Encoder producing the given byte
// order. Pair it with Release once the encoded bytes have been written out
// or copied; after Release neither the encoder nor any slice obtained from
// Bytes may be used.
func AcquireEncoder(order ByteOrder) *Encoder {
	poolGets.Add(1)
	e := encoderPool.Get().(*Encoder)
	e.Reset(order)
	return e
}

// Reset empties the encoder for reuse, keeping its allocated buffer.
func (e *Encoder) Reset(order ByteOrder) {
	e.buf = e.buf[:0]
	e.order = order
	e.base = 0
}

// Release resets the encoder and returns it to the package pool. Calling
// Release on a nil encoder is a no-op. The caller must not retain e or any
// slice previously returned by Bytes: the backing array will be overwritten
// by the next frame built from the pool.
func (e *Encoder) Release() {
	if e == nil {
		return
	}
	if cap(e.buf) > maxPooledCapacity {
		e.buf = nil
		poolOversize.Add(1)
	}
	e.buf = e.buf[:0]
	e.base = 0
	encoderPool.Put(e)
}

// Truncate discards everything encoded past offset n (a position obtained
// from Len). The alignment base moves back with the cut when it would
// otherwise point past the end. It lets a multi-message builder roll back
// a partially encoded message.
func (e *Encoder) Truncate(n int) {
	if n < 0 || n > len(e.buf) {
		return
	}
	e.buf = e.buf[:n]
	if e.base > n {
		e.base = n
	}
}

// zeros feeds Skip without a per-call allocation for typical headroom sizes.
var zeros [64]byte

// Skip appends n zero octets and restarts CDR alignment after them. It
// reserves a fixed-size prefix (e.g. a message header) inside the encoder's
// buffer that the caller patches in place once the body length is known,
// allowing header and body to go out in a single write without a copy.
func (e *Encoder) Skip(n int) {
	for n > len(zeros) {
		e.buf = append(e.buf, zeros[:]...)
		n -= len(zeros)
	}
	e.buf = append(e.buf, zeros[:n]...)
	e.base = len(e.buf)
}
