// Command maqs-loadgen drives an open-loop, coordinated-omission-correct
// load run against a maqs server and reports per-QoS-class latency
// percentiles, throughput and error/retry counts.
//
// Usage:
//
//	maqs-loadgen -self -scenario default -o BENCH_6.json
//	maqs-loadgen -ior <stringified-ior> -scenario scenarios.json
//
// Modes:
//
//	-self        start an in-process echo/document server on a TCP
//	             loopback port (the cmd/maqs-server demo servant with the
//	             Compression/Encryption/Actuality characteristics) and
//	             drive it — the one-command benchmark.
//	-ior REF     drive an external server (a stringified IOR, or @file to
//	             read it from a file — as printed by cmd/maqs-server).
//
// The scenario set is a preset name ("smoke", "default") or a JSON file
// (see docs/LOADGEN.md for the schema). Requests follow each scenario's
// intended arrival schedule regardless of server progress, and latency
// is measured from the intended timestamps, so percentiles include the
// queueing delay a stalled server inflicts — no coordinated omission.
//
// With -debug, the observability HTTP surface (/metrics, /trace,
// /flight, ...) is served with the live run status mounted on /loadgen.
// With -o, the final report is written in the BENCH_*.json trajectory
// format shared with cmd/benchjson.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"path/filepath"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"maqs"
	"maqs/internal/characteristics/actuality"
	"maqs/internal/characteristics/compression"
	"maqs/internal/characteristics/encryption"
	"maqs/internal/ior"
	"maqs/internal/loadgen"
	"maqs/internal/netsim"
	"maqs/internal/obs"
	"maqs/internal/orb"
	"maqs/internal/qos"
)

// selfServant mirrors the cmd/maqs-server demo servant: echo plus a
// small document store, enough surface for every scenario operation.
type selfServant struct {
	mu  sync.Mutex
	doc []byte
}

func (s *selfServant) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "echo":
		p, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		req.Out.WriteOctets(p)
		return nil
	case "get_document":
		s.mu.Lock()
		defer s.mu.Unlock()
		req.Out.WriteOctets(s.doc)
		return nil
	case "put_document":
		p, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.doc = append(s.doc[:0], p...)
		s.mu.Unlock()
		return nil
	case "get_time":
		req.Out.WriteLongLong(time.Now().UnixNano())
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no operation %q", req.Operation)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "maqs-loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	self := flag.Bool("self", false, "start an in-process target server on a loopback port")
	iorFlag := flag.String("ior", "", "target object reference (stringified IOR, or @file)")
	scenario := flag.String("scenario", "default", `scenario set: preset name ("smoke", "default") or a JSON file path`)
	seed := flag.Uint64("seed", 1, "PRNG seed: same seed, same schedule and payload draws")
	conns := flag.Int("conns", 4, "connections per endpoint in each class's stripe")
	debug := flag.String("debug", "", "HTTP debug address serving /metrics, /trace, /flight and the live /loadgen status (empty: disabled)")
	out := flag.String("o", "", "write the final report as BENCH-format JSON to this file (empty: stdout summary only)")
	report := flag.Duration("report", 2*time.Second, "interval between live progress summaries")
	workers := flag.Int("dispatch-workers", 4*runtime.GOMAXPROCS(0), "self server: dispatch workers per QoS class (0: unbounded goroutine-per-request)")
	queueDepth := flag.Int("queue-depth", 512, "self server: dispatch queue depth per class before shedding")
	shedDeadline := flag.Duration("shed-deadline", 0, "self server: shed requests queued longer than this (0: queue-full shedding only)")
	statusSnap := flag.String("status-snapshot", "", "write the final live-status JSON (the /loadgen view) to this file")
	tailSample := flag.Float64("tail-sample", -1, "enable tail-based trace sampling, keeping anomalous traces plus this fraction of healthy ones (0..1; negative: record every span)")
	traceSnap := flag.String("trace-snapshot", "", "write the kept trace spans (per class) as JSON to this file after the run")
	profileDir := flag.String("profile-dir", "", "write anomaly-triggered CPU/heap profile captures into this directory after the run")
	netsimLat := flag.Duration("netsim-latency", 0, "self server: run over a simulated network with this one-way link latency instead of TCP loopback (gives pipelining comparisons a realistic RTT)")
	flag.Parse()

	scenarios := loadgen.Preset(*scenario)
	if scenarios == nil {
		var err error
		if scenarios, err = loadgen.LoadScenarios(*scenario); err != nil {
			return fmt.Errorf("scenario %q is neither a preset nor a readable file: %w", *scenario, err)
		}
	}

	var target *ior.IOR
	var serverMetrics *obs.Registry
	var clientTransport netsim.Transport
	switch {
	case *self && *iorFlag != "":
		return fmt.Errorf("-self and -ior are mutually exclusive")
	case *self:
		var serverTransport netsim.Transport
		listen := "127.0.0.1:0"
		if *netsimLat > 0 {
			n := maqs.NewNetwork()
			n.SetLink("lg-client", "lg-server", maqs.Link{Latency: *netsimLat})
			serverTransport = n.Host("lg-server")
			clientTransport = n.Host("lg-client")
			listen = "lg-server:80"
		}
		ref, reg, shutdown, err := startSelfServer(*workers, *queueDepth, *shedDeadline, serverTransport, listen)
		if err != nil {
			return err
		}
		defer shutdown()
		target = ref
		serverMetrics = reg
		fmt.Printf("self target on %s (dispatch workers %d, queue depth %d)\n",
			ref.Profile.Addr(), *workers, *queueDepth)
		if *netsimLat > 0 {
			fmt.Printf("simulated link: %v one-way latency\n", *netsimLat)
		}
	case *iorFlag != "":
		raw := *iorFlag
		if strings.HasPrefix(raw, "@") {
			data, err := os.ReadFile(raw[1:])
			if err != nil {
				return err
			}
			raw = strings.TrimSpace(string(data))
		}
		ref, err := ior.Parse(raw)
		if err != nil {
			return fmt.Errorf("parsing -ior: %w", err)
		}
		target = ref
	default:
		return fmt.Errorf("either -self or -ior is required")
	}

	// The central bundle collects anomaly dumps from every class system
	// (shared flight recorder) and backs the -debug HTTP surface. When
	// profiles are wanted — as files or on /profile — anomaly-triggered
	// capture rides on the same shared recorder.
	centralCfg := obs.Config{}
	if *profileDir != "" || *debug != "" {
		centralCfg.Profiling = &obs.ProfilingConfig{}
	}
	central := maqs.NewObservabilityWithConfig(centralCfg)
	var tailCfg *obs.TailSamplingConfig
	if *tailSample >= 0 {
		tailCfg = &obs.TailSamplingConfig{HealthyKeepFraction: *tailSample}
	}
	runner, err := loadgen.NewRunner(loadgen.Config{
		Target:           target,
		Scenarios:        scenarios,
		Seed:             *seed,
		Transport:        clientTransport,
		ConnsPerEndpoint: *conns,
		Summary:          os.Stdout,
		SummaryEvery:     *report,
		ServerMetrics:    serverMetrics,
		Observability:    central,
		TailSampling:     tailCfg,
	})
	if err != nil {
		return err
	}
	defer runner.Close()
	central.SetDebugPage("/loadgen", runner.Status)
	central.SetDebugPage("/slo", func() any { return runner.SLOStatus() })

	var debugSrv *http.Server
	if *debug != "" {
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", central.Handler())
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		debugSrv = &http.Server{Handler: mux}
		go func() { _ = debugSrv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = debugSrv.Shutdown(ctx)
			cancel()
		}()
		fmt.Printf("debug endpoint on http://%s/ (live status on /loadgen, budgets on /slo, profiles on /profile and /debug/pprof/)\n", ln.Addr())
	}

	// Ctrl-C ends the run early; the report covers what completed.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var total int
	for _, s := range scenarios {
		total += s.Requests
	}
	fmt.Printf("open-loop run: %d scenarios, %d requests, seed %d\n\n", len(scenarios), total, *seed)

	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	fmt.Printf("\nrun finished in %.2fs: %d/%d completed, %d errors\n",
		rep.DurationSeconds, rep.TotalCompleted, rep.TotalScheduled, rep.TotalErrors)
	if rep.ServerAdmitted > 0 || rep.TotalShed > 0 {
		fmt.Printf("server admission: %d admitted, %d shed\n", rep.ServerAdmitted, rep.TotalShed)
		for name, v := range rep.ServerSheds {
			fmt.Printf("  %s %d\n", name, v)
		}
	}
	for _, c := range rep.Classes {
		fmt.Printf("\nclass %s (%s", c.Class, c.Operation)
		if c.Characteristic != "" {
			fmt.Printf(", %s", c.Characteristic)
		}
		fmt.Printf("):\n")
		fmt.Printf("  completed  %d/%d, %.0f req/s, errors %d", c.Completed, c.Scheduled, c.ThroughputRPS, c.Errors)
		if c.Errors > 0 {
			fmt.Printf(" (%s)", c.ErrKindsString())
		}
		if c.Retries > 0 || c.Degrades > 0 {
			fmt.Printf(", retries %d, degrades %d", c.Retries, c.Degrades)
		}
		fmt.Println()
		fmt.Printf("  latency    p50 %-10v p90 %-10v p99 %-10v p99.9 %-10v max %v\n",
			ns(c.Latency.P50Ns), ns(c.Latency.P90Ns), ns(c.Latency.P99Ns), ns(c.Latency.P999Ns), ns(c.Latency.MaxNs))
		fmt.Printf("  service    p50 %-10v p90 %-10v p99 %-10v p99.9 %-10v max %v\n",
			ns(c.Service.P50Ns), ns(c.Service.P90Ns), ns(c.Service.P99Ns), ns(c.Service.P999Ns), ns(c.Service.MaxNs))
		for _, o := range c.SLO {
			fmt.Printf("  slo %-10s %-8s budget %5.1f%% left  burn fast %.2f slow %.2f  (%d bad / %d good)\n",
				o.Objective, o.State, o.BudgetRemaining*100, o.FastBurn, o.SlowBurn, o.Bad, o.Good)
		}
		if c.Trace != nil {
			fmt.Printf("  traces     kept %v dropped %v evicted %d\n",
				c.Trace.Kept, c.Trace.Dropped, c.Trace.Evicted)
		}
	}
	if rep.TraceKept > 0 || rep.TraceDropped > 0 {
		fmt.Printf("\ntail sampling: %d traces kept, %d dropped\n", rep.TraceKept, rep.TraceDropped)
	}
	if dumps := central.Flight.Dumps(); len(dumps) > 0 {
		fmt.Printf("\nanomaly dumps frozen during the run (inspect with -debug and /flight?dump=<id>):\n")
		for _, d := range dumps {
			fmt.Printf("  %-28s %s\n", d.ID, d.Kind)
		}
	}

	if *out != "" {
		if err := rep.BenchDoc().WriteFile(*out); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Printf("\nreport written to %s\n", *out)
	}
	if *statusSnap != "" {
		data, err := json.MarshalIndent(runner.Status(), "", "  ")
		if err != nil {
			return fmt.Errorf("encoding status snapshot: %w", err)
		}
		if err := os.WriteFile(*statusSnap, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *statusSnap, err)
		}
		fmt.Printf("status snapshot written to %s\n", *statusSnap)
	}
	if *traceSnap != "" {
		data, err := json.MarshalIndent(runner.KeptSpans(), "", "  ")
		if err != nil {
			return fmt.Errorf("encoding trace snapshot: %w", err)
		}
		if err := os.WriteFile(*traceSnap, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *traceSnap, err)
		}
		fmt.Printf("trace snapshot written to %s\n", *traceSnap)
	}
	if *profileDir != "" {
		if err := writeProfiles(central.Profiler, *profileDir); err != nil {
			return err
		}
	}
	return nil
}

// writeProfiles drains the anomaly-triggered profiler into per-capture
// pprof files: <id>.cpu.pprof and <id>.heap.pprof.
func writeProfiles(p *obs.Profiler, dir string) error {
	if p == nil {
		return nil
	}
	p.Flush()
	sums := p.Captures()
	if len(sums) == 0 {
		fmt.Println("no anomaly-triggered profile captures this run")
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	written := 0
	for _, sum := range sums {
		cap, ok := p.Capture(sum.ID)
		if !ok {
			continue
		}
		if len(cap.CPU) > 0 {
			if err := os.WriteFile(filepath.Join(dir, cap.ID+".cpu.pprof"), cap.CPU, 0o644); err != nil {
				return fmt.Errorf("writing cpu profile: %w", err)
			}
			written++
		}
		if len(cap.Heap) > 0 {
			if err := os.WriteFile(filepath.Join(dir, cap.ID+".heap.pprof"), cap.Heap, 0o644); err != nil {
				return fmt.Errorf("writing heap profile: %w", err)
			}
			written++
		}
	}
	fmt.Printf("%d profile file(s) from %d capture(s) written to %s\n", written, len(sums), dir)
	return nil
}

func ns(v int64) time.Duration { return time.Duration(v).Round(time.Microsecond) }

// startSelfServer brings up the in-process target: the demo servant with
// the three standard characteristics on a loopback TCP port, bounded
// per-class dispatch, and contract-driven admission control. Its metrics
// registry is returned so the report can harvest admitted/shed counts.
func startSelfServer(workers, queueDepth int, shedDeadline time.Duration, transport netsim.Transport, listen string) (*ior.IOR, *obs.Registry, func(), error) {
	bundle := maqs.NewObservability()
	admission := maqs.NewAdmissionController(maqs.ClassPolicy{
		Workers:    workers,
		QueueDepth: queueDepth,
		Deadline:   shedDeadline,
	})
	sys, err := maqs.NewSystem(maqs.Options{
		Transport:          transport,
		Observability:      bundle,
		DispatchWorkers:    workers,
		DispatchQueueDepth: queueDepth,
		DispatchDeadline:   shedDeadline,
		AdmissionPolicy:    admission.Policy,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := sys.Listen(listen); err != nil {
		sys.Shutdown()
		return nil, nil, nil, err
	}
	for _, mod := range []string{compression.ModuleName, encryption.ModuleName} {
		if err := sys.LoadModule(mod, nil); err != nil {
			sys.Shutdown()
			return nil, nil, nil, err
		}
	}
	skel := maqs.NewServerSkeleton(&selfServant{doc: []byte("loadgen self target")})
	skel.SetAdmission(admission)
	for _, impl := range []qos.Impl{
		compression.NewImpl(0),
		encryption.NewImpl(0),
		actuality.NewImpl(0, time.Minute),
	} {
		if err := skel.AddQoS(impl); err != nil {
			sys.Shutdown()
			return nil, nil, nil, err
		}
	}
	ref, err := sys.ActivateQoS("load", "IDL:maqs/Demo:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression, maqs.Encryption, maqs.Actuality},
		Modules:         []string{compression.ModuleName, encryption.ModuleName},
	})
	if err != nil {
		sys.Shutdown()
		return nil, nil, nil, err
	}
	return ref, bundle.Registry, sys.Shutdown, nil
}
