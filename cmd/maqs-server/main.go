// Command maqs-server runs a standalone QoS-enabled demo server over TCP:
// an echo/document service supporting the Compression, Encryption and
// Actuality characteristics, plus a trading service where the offer is
// exported. It prints the stringified IORs so any client process (on this
// or another machine) can negotiate against it.
//
// Usage:
//
//	maqs-server [-addr 127.0.0.1:9700] [-debug 127.0.0.1:9780]
//
// With -debug, an HTTP endpoint exposes /metrics (text or ?format=json),
// /trace (recent spans, ?trace=<id> to filter, ?limit=N to bound),
// /trace/ops (per-operation aggregates), /flight (the invocation flight
// recorder's record ring and anomaly dumps, ?dump=<id> for one frozen
// dump), /health (liveness) and /ready (readiness checks) for the
// instrumented invocation path.
//
// Inspect the printed references with ior-dump; stop with ctrl-C.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"maqs"
	"maqs/internal/characteristics/actuality"
	"maqs/internal/characteristics/compression"
	"maqs/internal/characteristics/encryption"
	"maqs/internal/infra/accounting"
	"maqs/internal/infra/trader"
	"maqs/internal/orb"
)

// demoServant answers echo/document operations.
type demoServant struct {
	mu  sync.Mutex
	doc []byte
}

func (s *demoServant) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "echo":
		p, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		req.Out.WriteOctets(p)
		return nil
	case "get_document":
		s.mu.Lock()
		defer s.mu.Unlock()
		req.Out.WriteOctets(s.doc)
		return nil
	case "put_document":
		p, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.doc = append([]byte(nil), p...)
		s.mu.Unlock()
		return nil
	case "get_time":
		req.Out.WriteLongLong(time.Now().UnixNano())
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no operation %q", req.Operation)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "maqs-server: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9700", "listen address (host:port)")
	debug := flag.String("debug", "", "HTTP debug address serving /metrics, /trace, /flight, /health and /ready (empty: disabled)")
	flag.Parse()

	// Outgoing invocations from this process (trader lookups, replica
	// fan-out) get the stock retry + circuit-breaker policy.
	opts := maqs.Options{Resilience: maqs.DefaultResiliencePolicy()}
	if *debug != "" {
		// Anomaly-triggered profiling rides on the flight recorder: a
		// frozen dump (SLO burn, shed storm, breaker trip) also captures
		// a short CPU profile and heap snapshot, served on /profile.
		opts.Observability = maqs.NewObservabilityWithConfig(maqs.ObservabilityConfig{
			Profiling: &maqs.ProfilingConfig{},
		})
	}
	sys, err := maqs.NewSystem(opts)
	if err != nil {
		return err
	}
	defer sys.Shutdown()
	if err := sys.Listen(*addr); err != nil {
		return err
	}
	if err := sys.LoadModule(compression.ModuleName, nil); err != nil {
		return err
	}
	if err := sys.LoadModule(encryption.ModuleName, nil); err != nil {
		return err
	}
	meter := accounting.NewMeter()
	meter.SetTariff(maqs.Compression, accounting.Tariff{PerRequest: 0.001, PerKiB: 0.0001})
	meter.SetTariff(maqs.Encryption, accounting.Tariff{PerRequest: 0.002, PerKiB: 0.0002})
	meter.SetTariff(maqs.Actuality, accounting.Tariff{PerRequest: 0.0005})
	sys.ORB.AddIncomingFilter(meter)

	servant := &demoServant{doc: []byte("hello from maqs-server")}
	skel := maqs.NewServerSkeleton(servant)
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		return err
	}
	if err := skel.AddQoS(encryption.NewImpl(0)); err != nil {
		return err
	}
	if err := skel.AddQoS(actuality.NewImpl(0, time.Minute)); err != nil {
		return err
	}
	ref, err := sys.ActivateQoS("demo", "IDL:maqs/Demo:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression, maqs.Encryption, maqs.Actuality},
		Modules:         []string{compression.ModuleName, encryption.ModuleName},
	})
	if err != nil {
		return err
	}

	traderServant := trader.NewServant()
	traderRef, err := sys.Activate(trader.ObjectKey, trader.RepoID, traderServant)
	if err != nil {
		return err
	}
	traderServant.Export(&trader.ServiceOffer{
		ServiceType: "IDL:maqs/Demo:1.0",
		Ref:         ref.String(),
		Properties:  map[string]string{"host": *addr, "demo": "true"},
	})

	var debugSrv *http.Server
	if *debug != "" {
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", sys.Observability.Handler())
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		debugSrv = &http.Server{Handler: mux}
		go func() { _ = debugSrv.Serve(ln) }()
		fmt.Printf("debug endpoint on http://%s/ (/metrics, /trace, /trace/ops, /flight, /profile, /health, /ready, /debug/pprof/)\n\n", ln.Addr())
	}

	fmt.Printf("maqs-server listening on %s\n\n", *addr)
	fmt.Printf("demo object (Compression, Encryption, Actuality):\n%s\n\n", ref)
	fmt.Printf("trader:\n%s\n\n", traderRef)
	fmt.Println("press ctrl-C to stop; accounting statements print on shutdown")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop

	if debugSrv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = debugSrv.Shutdown(shutdownCtx)
		cancel()
	}

	fmt.Println("\naccounting statements:")
	for _, s := range meter.Statements() {
		fmt.Printf("  binding %s (%s): %d requests, %d B in, %d B out -> %.4f credits\n",
			s.BindingID[:8], s.Usage.Characteristic, s.Usage.Requests,
			s.Usage.BytesIn, s.Usage.BytesOut, s.Cost)
	}
	return nil
}
