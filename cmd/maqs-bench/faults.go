package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"maqs"
	"maqs/internal/characteristics/compression"
	"maqs/internal/orb"
)

// runFaultsDemo runs the demo world under a seeded fault plan: 5% segment
// drop, 50ms delay jitter and one network partition window, against a
// client with retry, circuit breaking and a QoS degradation ladder
// installed. It prints what the resilience layer did: call outcomes,
// injected faults, breaker transitions and automatic QoS renegotiations.
// With flight set, the chaos report is followed by the flight recorder's
// JSON dump: the retained record ring and every frozen anomaly dump.
func runFaultsDemo(w *os.File, calls int, flight bool) error {
	bundle := maqs.NewObservability()
	network := maqs.NewNetwork()
	network.Seed(7)

	server, err := maqs.NewSystem(maqs.Options{
		Transport:     network.Host("server"),
		Observability: bundle,
	})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	client, err := maqs.NewSystem(maqs.Options{
		Transport:     network.Host("client"),
		Observability: bundle,
		Resilience: &maqs.ResiliencePolicy{
			Retry: maqs.RetryPolicy{
				MaxAttempts:       6,
				BaseDelay:         5 * time.Millisecond,
				MaxDelay:          60 * time.Millisecond,
				Jitter:            0.2,
				PerAttemptTimeout: 150 * time.Millisecond,
			},
			Breaker: maqs.BreakerPolicy{
				FailureThreshold: 100,
				OpenTimeout:      30 * time.Millisecond,
				HalfOpenProbes:   2,
			},
			Seed: 42,
		},
	})
	if err != nil {
		return err
	}
	defer client.Shutdown()

	if err := server.Listen("server:5000"); err != nil {
		return err
	}
	for _, sys := range []*maqs.System{server, client} {
		if err := sys.LoadModule(compression.ModuleName, nil); err != nil {
			return err
		}
	}

	doc := make([]byte, 4096)
	for i := range doc {
		doc[i] = byte('a' + i%17)
	}
	skel := maqs.NewServerSkeleton(orb.ServantFunc(func(req *maqs.ServerRequest) error {
		if req.Operation != "fetch" {
			return orb.NewSystemException(orb.ExcBadOperation, 1, "no op %q", req.Operation)
		}
		req.Out.WriteOctets(doc)
		return nil
	}))
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		return err
	}
	ref, err := server.ActivateQoS("doc", "IDL:demo/Doc:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression},
		Modules:         []string{compression.ModuleName},
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	stub := client.Stub(ref)
	stub.DeclareIdempotent("fetch")
	if _, err := stub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(6)}},
	}); err != nil {
		return err
	}

	// Degradation ladder: on sustained trouble step compression down to
	// cheap (level 1), then off (level 0); Recover climbs back.
	levelStep := func(name string, level float64) maqs.DegradeStep {
		return maqs.DegradeStep{Name: name, Proposal: &maqs.Proposal{
			Characteristic: maqs.Compression,
			Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(level)}},
		}}
	}
	degrader := maqs.NewDegrader(stub, levelStep("cheap-compression", 1), levelStep("compression-off", 0))
	mon := maqs.NewMonitor(64)
	stub.AddObserver(mon.Observe)
	stub.AddObserver(degrader.WatchMonitor(mon, maqs.Rule{
		Name:     "error-rate",
		Violated: func(s maqs.Stats) bool { return s.Window >= 16 && s.ErrorRate > 0.5 },
	}))
	degrader.WatchBreakers(client.ORB.Breakers())

	var transMu sync.Mutex
	var transitions []maqs.BreakerTransition
	client.ORB.Breakers().Subscribe(func(tr maqs.BreakerTransition) {
		transMu.Lock()
		transitions = append(transitions, tr)
		transMu.Unlock()
	})

	start := time.Now()
	inj := network.InstallFaults(maqs.FaultPlan{Seed: 99, Rules: []maqs.FaultRule{
		{Kind: maqs.FaultDrop, Probability: 0.05},
		{Kind: maqs.FaultDelay, Jitter: 50 * time.Millisecond, Probability: 0.5},
		{Kind: maqs.FaultPartition, Src: "client", Dst: "server",
			From: 200 * time.Millisecond, Until: 600 * time.Millisecond},
	}})

	const workers = 8
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		successes int
		failures  int
	)
	work := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				callCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
				_, err := stub.Call(callCtx, "fetch", nil)
				cancel()
				mu.Lock()
				if err == nil {
					successes++
				} else {
					failures++
				}
				mu.Unlock()
			}
		}()
	}
	// Pace the load so the run spans the fault schedule: healthy traffic
	// before the partition, the outage itself, and recovery after it.
	for i := 0; i < calls; i++ {
		work <- struct{}{}
		time.Sleep(5 * time.Millisecond)
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	// Recovery phase: clear the faults and probe until the breaker closes
	// again, which also releases any degradation left pending while the
	// endpoint was unreachable.
	network.ClearFaults()
	breaker := client.ORB.Breakers().Get("server:5000")
	recoverDeadline := time.Now().Add(5 * time.Second)
	for breaker.State() != maqs.BreakerClosed && time.Now().Before(recoverDeadline) {
		probeCtx, cancel := context.WithTimeout(ctx, time.Second)
		_, _ = stub.Call(probeCtx, "fetch", nil)
		cancel()
		time.Sleep(10 * time.Millisecond)
	}
	// Give the asynchronous renegotiation a moment to land.
	time.Sleep(300 * time.Millisecond)

	reg := bundle.Registry
	stats := inj.Stats()
	fmt.Fprintf(w, "chaos run: %d calls in %v under seeded fault plan\n\n", calls, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  outcomes        %d ok, %d failed\n", successes, failures)
	fmt.Fprintf(w, "  faults injected %d dropped, %d delayed, %d refused dials, %d severed\n",
		stats.Dropped, stats.Delayed, stats.RefusedDials, stats.Partitioned+stats.Resets)
	fmt.Fprintf(w, "  retries         %d (maqs_client_retries_total)\n",
		reg.Counter("maqs_client_retries_total").Value())
	fmt.Fprintf(w, "  breaker         %d transitions, now %s\n",
		len(transitions), client.ORB.Breakers().Get("server:5000").State())
	for _, tr := range transitions {
		fmt.Fprintf(w, "                  %s: %s -> %s\n", tr.Endpoint, tr.From, tr.To)
	}
	fmt.Fprintf(w, "  qos degradation %d down, %d up, ladder level %d\n",
		reg.Counter("maqs_qos_degradations_total").Value(),
		reg.Counter("maqs_qos_recoveries_total").Value(),
		degrader.Level())
	if b := stub.Binding(); b != nil {
		fmt.Fprintf(w, "  contract        %s level %.0f (epoch %d)\n",
			b.Characteristic, b.Contract.Number("level", -1), b.Contract.Epoch)
	}

	if flight {
		fr := bundle.Flight
		dump := struct {
			Snapshot any                `json:"snapshot"`
			Dumps    []*maqs.FlightDump `json:"dumps"`
		}{Snapshot: fr.Snapshot(0)}
		for _, s := range fr.Dumps() {
			if d, ok := fr.Dump(s.ID); ok {
				dump.Dumps = append(dump.Dumps, d)
			}
		}
		data, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nflight recorder:\n%s\n", data)
	}
	return nil
}
