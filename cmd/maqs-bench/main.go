// Command maqs-bench regenerates the evaluation tables (E1..E10, see
// DESIGN.md §4): each experiment operationalises one claim of the paper
// and prints a table of measurements.
//
// Usage:
//
//	maqs-bench           # run every experiment
//	maqs-bench E3 E5     # run selected experiments
//	maqs-bench -list     # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"maqs/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maqs-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return 0
	}
	selected := fs.Args()
	wanted := func(id string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, s := range selected {
			if strings.EqualFold(s, id) {
				return true
			}
		}
		return false
	}
	failures := 0
	for _, e := range all {
		if !wanted(e.ID) {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) failed: %v\n", e.ID, e.Name, err)
			failures++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return 1
	}
	return 0
}
