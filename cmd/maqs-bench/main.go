// Command maqs-bench regenerates the evaluation tables (E1..E10, see
// DESIGN.md §4): each experiment operationalises one claim of the paper
// and prints a table of measurements.
//
// Usage:
//
//	maqs-bench           # run every experiment
//	maqs-bench E3 E5     # run selected experiments
//	maqs-bench -list     # list experiments
//	maqs-bench -metrics  # run an instrumented demo world, dump JSON
//	maqs-bench -faults   # chaos mode: demo world under a seeded fault plan
//
// Any mode may be combined with -cpuprofile/-memprofile to capture pprof
// profiles of the run (see docs/PERFORMANCE.md for the workflow):
//
//	maqs-bench -cpuprofile cpu.out E1
//	go tool pprof cpu.out
//
// With -metrics, instead of the experiment tables the bench runs a small
// fully instrumented client/server world (negotiation, compressed calls,
// renegotiation, release) sharing one observability bundle, and prints
// its JSON snapshot: metric values, per-operation span aggregates and
// the recorded spans themselves.
//
// With -faults, the same kind of world runs under a deterministic fault
// plan (segment drops, delay jitter, one partition window) with the
// client's resilience layer — retry with backoff, a per-endpoint circuit
// breaker and a QoS degradation ladder — switched on; the run ends with a
// report of injected faults, retries, breaker transitions and automatic
// renegotiations (see docs/RESILIENCE.md). Adding -flight appends the
// invocation flight recorder's JSON dump — the retained per-call record
// ring plus every anomaly dump the run froze (retry exhaustion, breaker
// openings, deadline misses, degradation steps).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"maqs"
	"maqs/internal/characteristics/compression"
	"maqs/internal/experiments"
	"maqs/internal/orb"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maqs-bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	metrics := fs.Bool("metrics", false, "run an instrumented demo world and dump its observability snapshot as JSON")
	faults := fs.Bool("faults", false, "run the demo world under a seeded fault plan and report what the resilience layer did")
	faultCalls := fs.Int("fault-calls", 400, "number of invocations for the -faults chaos run")
	flight := fs.Bool("flight", false, "with -faults: append the flight recorder's JSON dump (record ring + anomaly dumps) to the chaos report")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to `file` (inspect with go tool pprof)")
	memProfile := fs.String("memprofile", "", "write an allocation profile taken at exit to `file`")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating cpu profile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "starting cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "creating mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows steady state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "writing mem profile: %v\n", err)
			}
		}()
	}
	if *metrics {
		if err := runMetricsDemo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics demo failed: %v\n", err)
			return 1
		}
		return 0
	}
	if *faults {
		if err := runFaultsDemo(os.Stdout, *faultCalls, *flight); err != nil {
			fmt.Fprintf(os.Stderr, "faults demo failed: %v\n", err)
			return 1
		}
		return 0
	}
	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return 0
	}
	selected := fs.Args()
	wanted := func(id string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, s := range selected {
			if strings.EqualFold(s, id) {
				return true
			}
		}
		return false
	}
	failures := 0
	for _, e := range all {
		if !wanted(e.ID) {
			continue
		}
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) failed: %v\n", e.ID, e.Name, err)
			failures++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s took %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// runMetricsDemo exercises the full instrumented invocation path on a
// simulated network — negotiation, QoS-module calls, renegotiation,
// release — with client and server sharing one observability bundle, so
// the collector holds complete client→server traces. The bundle's JSON
// snapshot goes to w.
func runMetricsDemo(w *os.File) error {
	bundle := maqs.NewObservability()
	network := maqs.NewNetwork()

	server, err := maqs.NewSystem(maqs.Options{
		Transport:     network.Host("server"),
		Observability: bundle,
	})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	client, err := maqs.NewSystem(maqs.Options{
		Transport:     network.Host("client"),
		Observability: bundle,
	})
	if err != nil {
		return err
	}
	defer client.Shutdown()

	if err := server.Listen("server:5000"); err != nil {
		return err
	}
	for _, sys := range []*maqs.System{server, client} {
		if err := sys.LoadModule(compression.ModuleName, nil); err != nil {
			return err
		}
	}

	doc := bytes.Repeat([]byte("metrics demo payload, quite compressible. "), 100)
	skel := maqs.NewServerSkeleton(orb.ServantFunc(func(req *maqs.ServerRequest) error {
		switch req.Operation {
		case "fetch":
			req.Out.WriteOctets(doc)
			return nil
		default:
			return orb.NewSystemException(orb.ExcBadOperation, 1, "no op %q", req.Operation)
		}
	}))
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		return err
	}
	ref, err := server.ActivateQoS("doc", "IDL:demo/Doc:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression},
		Modules:         []string{compression.ModuleName},
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	stub := client.Stub(ref)
	// The stub already carries the canonical metrics observer (System.Stub
	// attaches it when observability is on); the monitor is stacked for
	// its sliding-window statistics only. Publishing it to the registry as
	// well would double-count every call into the same instruments.
	mon := maqs.NewMonitor(32)
	stub.AddObserver(mon.Observe)

	if _, err := stub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(6)}},
	}); err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if _, err := stub.Call(ctx, "fetch", nil); err != nil {
			return err
		}
	}
	if _, err := stub.Renegotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(9)}},
	}); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, err := stub.Call(ctx, "fetch", nil); err != nil {
			return err
		}
	}
	if err := stub.Release(ctx); err != nil {
		return err
	}

	data, err := bundle.SnapshotJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
