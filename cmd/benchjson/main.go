// Command benchjson turns `go test -bench -benchmem` output into a JSON
// trajectory file (BENCH_*.json, see docs/PERFORMANCE.md).
//
// It reads benchmark output on stdin, echoes every line through to stdout
// unchanged (so the human-readable table is still visible in the terminal
// and in CI logs), and writes the parsed results to the file named by -o:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -o BENCH_4.json
//
// Each benchmark line becomes one record with the benchmark name (GOMAXPROCS
// suffix stripped), iteration count, ns/op, and — when -benchmem is on —
// B/op and allocs/op. Context lines (goos/goarch/cpu) are captured into
// the file header, and the git commit hash plus an ISO-8601 timestamp are
// stamped alongside them, so a BENCH_*.json is attributable to the exact
// tree and moment that produced it. The parsing and writing live in
// internal/benchfmt, shared with the loadgen report writer.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"maqs/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in *os.File, out, errw *os.File) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(errw)
	outPath := fs.String("o", "", "output `file` for the JSON trajectory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outPath == "" {
		fmt.Fprintln(errw, "benchjson: -o is required")
		return 2
	}

	doc := benchfmt.NewDoc()

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		if r, ok := benchfmt.ParseLine(line); ok {
			doc.Results = append(doc.Results, r)
			continue
		}
		benchfmt.ParseContextLine(doc.Context, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "benchjson: reading input: %v\n", err)
		return 1
	}

	if err := doc.WriteFile(*outPath); err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(errw, "benchjson: wrote %d results to %s\n", len(doc.Results), *outPath)
	return 0
}
