// Command benchjson turns `go test -bench -benchmem` output into a JSON
// trajectory file (BENCH_*.json, see docs/PERFORMANCE.md).
//
// It reads benchmark output on stdin, echoes every line through to stdout
// unchanged (so the human-readable table is still visible in the terminal
// and in CI logs), and writes the parsed results to the file named by -o:
//
//	go test -bench=. -benchmem -run='^$' . | go run ./cmd/benchjson -o BENCH_4.json
//
// Each benchmark line becomes one record with the benchmark name (GOMAXPROCS
// suffix stripped), iteration count, ns/op, and — when -benchmem is on —
// B/op and allocs/op. Context lines (goos/goarch/pkg/cpu) are captured into
// the file header so a BENCH_*.json is self-describing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in *os.File, out, errw *os.File) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(errw)
	outPath := fs.String("o", "", "output `file` for the JSON trajectory (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *outPath == "" {
		fmt.Fprintln(errw, "benchjson: -o is required")
		return 2
	}

	doc := struct {
		Context map[string]string `json:"context"`
		Results []Result          `json:"results"`
	}{Context: map[string]string{}}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(out, line)
		if r, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, r)
			continue
		}
		// pkg is deliberately not captured: one bench run spans several
		// packages and a single context value would be misleading.
		if k, v, ok := strings.Cut(line, ": "); ok {
			switch k {
			case "goos", "goarch", "cpu":
				doc.Context[k] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(errw, "benchjson: reading input: %v\n", err)
		return 1
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(errw, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(errw, "benchjson: wrote %d results to %s\n", len(doc.Results), *outPath)
	return 0
}

// parseBenchLine parses a `go test -bench` result line such as
//
//	BenchmarkE1Interception/plain/0B-8   163844   7534 ns/op   1680 B/op   42 allocs/op
//
// returning ok=false for anything that is not a benchmark result.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = val
			seen = true
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		}
	}
	return r, seen
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker from a benchmark
// name so trajectories compare across machines with different core counts.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
