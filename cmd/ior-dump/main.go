// Command ior-dump decodes a stringified object reference and prints its
// structure: type ID, endpoint, object key, and the QoS components (the
// TagQoS characteristic list and alternate endpoints) the MAQS dispatch
// keys on.
//
// Usage:
//
//	ior-dump IOR:0000...
//	echo IOR:0000... | ior-dump
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"maqs/internal/ior"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var inputs []string
	if len(args) > 0 {
		inputs = args
	} else {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1<<20), 1<<20)
		for scanner.Scan() {
			line := strings.TrimSpace(scanner.Text())
			if line != "" {
				inputs = append(inputs, line)
			}
		}
		if err := scanner.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ior-dump: reading stdin: %v\n", err)
			return 1
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ior-dump IOR:... [IOR:...] (or pipe IORs on stdin)")
		return 2
	}
	failures := 0
	for _, s := range inputs {
		if err := dump(s); err != nil {
			fmt.Fprintf(os.Stderr, "ior-dump: %v\n", err)
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func dump(s string) error {
	ref, err := ior.Parse(s)
	if err != nil {
		return err
	}
	fmt.Printf("type ID:    %s\n", ref.TypeID)
	fmt.Printf("endpoint:   %s\n", ref.Profile.Addr())
	fmt.Printf("object key: %q\n", ref.Profile.ObjectKey)
	info, qosAware, err := ref.QoS()
	if err != nil {
		return fmt.Errorf("decoding QoS component: %w", err)
	}
	if qosAware {
		fmt.Printf("QoS-aware:  yes\n")
		fmt.Printf("  characteristics: %s\n", strings.Join(info.Characteristics, ", "))
		if len(info.Modules) > 0 {
			fmt.Printf("  transport modules: %s\n", strings.Join(info.Modules, ", "))
		}
	} else {
		fmt.Printf("QoS-aware:  no\n")
	}
	endpoints, err := ref.AlternateEndpoints()
	if err != nil {
		return fmt.Errorf("decoding endpoints component: %w", err)
	}
	if len(endpoints) > 0 {
		fmt.Printf("group endpoints: %s\n", strings.Join(endpoints, ", "))
	}
	if n := len(ref.Profile.Components); n > 0 {
		fmt.Printf("components: %d\n", n)
		for _, c := range ref.Profile.Components {
			fmt.Printf("  tag 0x%08X, %d bytes\n", c.Tag, len(c.Data))
		}
	}
	fmt.Println()
	return nil
}
