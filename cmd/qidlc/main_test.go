package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validQIDL = `
module demo {
  qos Fast { param long level = 1; };
  interface Svc supports Fast { void ping(); };
};
`

func TestRunGeneratesOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "demo.qidl")
	if err := os.WriteFile(in, []byte(validQIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{in}, os.Stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	out, err := os.ReadFile(filepath.Join(dir, "demo.gen.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "package demo") {
		t.Fatalf("output lacks package clause:\n%.200s", out)
	}
}

func TestRunExplicitOutputAndPackage(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "demo.qidl")
	outPath := filepath.Join(dir, "woven.go")
	if err := os.WriteFile(in, []byte(validQIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-o", outPath, "-package", "custom", in}, os.Stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "package custom") {
		t.Fatal("package override ignored")
	}
}

func TestRunCheckOnly(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "demo.qidl")
	if err := os.WriteFile(in, []byte(validQIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-check", in}, os.Stderr); code != 0 {
		t.Fatalf("exit code = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "demo.gen.go")); !os.IsNotExist(err) {
		t.Fatal("-check emitted output")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.qidl")
	if err := os.WriteFile(in, []byte(`interface I { Unknown f(); };`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{in}, os.Stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.qidl")}, os.Stderr); code != 1 {
		t.Fatal("missing input accepted")
	}
	if code := run(nil, os.Stderr); code != 2 {
		t.Fatal("no-arg run accepted")
	}
}
