// Command qidlc is the QIDL compiler: the aspect weaver of the MAQS
// framework. It reads a QIDL specification (CORBA-style IDL extended with
// "qos" declarations and "supports" clauses) and emits the woven Go
// mapping — stubs with mediator delegation, server skeletons with
// prolog/epilog seams, QoS implementation and mediator skeletons, and
// typed parameter accessors.
//
// Usage:
//
//	qidlc [-o out.go] [-package name] input.qidl
//
// With no -o flag the generated source is written next to the input as
// <input>.gen.go.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"strings"

	"maqs/internal/idl"
	"maqs/internal/idl/gen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("qidlc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "output file (default: <input>.gen.go)")
	pkg := fs.String("package", "", "Go package name (default: module name)")
	checkOnly := fs.Bool("check", false, "parse and check only, emit nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: qidlc [-o out.go] [-package name] [-check] input.qidl")
		return 2
	}
	input := fs.Arg(0)
	src, err := os.ReadFile(input)
	if err != nil {
		fmt.Fprintf(stderr, "qidlc: %v\n", err)
		return 1
	}
	spec, err := idl.Parse(input, string(src))
	if err != nil {
		fmt.Fprintf(stderr, "qidlc: %v\n", err)
		return 1
	}
	if errs := idl.Check(spec); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(stderr, "qidlc: %v\n", e)
		}
		return 1
	}
	if *checkOnly {
		return 0
	}
	code, err := gen.Generate(spec, gen.Options{Package: *pkg, Source: input})
	if err != nil {
		fmt.Fprintf(stderr, "qidlc: %v\n", err)
		return 1
	}
	formatted, err := format.Source(code)
	if err != nil {
		// Emit the unformatted source anyway so the bug is inspectable.
		formatted = code
		fmt.Fprintf(stderr, "qidlc: warning: generated code does not format: %v\n", err)
	}
	path := *outPath
	if path == "" {
		path = strings.TrimSuffix(input, ".qidl") + ".gen.go"
	}
	if err := os.WriteFile(path, formatted, 0o644); err != nil {
		fmt.Fprintf(stderr, "qidlc: %v\n", err)
		return 1
	}
	return 0
}
