// Package maqs is the public face of this MAQS reproduction: a generic,
// multi-category Quality-of-Service management framework for
// object-oriented middleware, after C. Becker and K. Geihs, "Quality of
// Service and Object-Oriented Middleware — Multiple Concerns and their
// Separation" (ICDCS 2001 workshops).
//
// The package re-exports the framework's building blocks and offers
// System, a convenience bundle wiring an ORB, its reflective QoS
// transport and a characteristic registry preloaded with the five
// characteristics of the paper's evaluation (availability through replica
// groups, load balancing, compression, encryption, actuality of data).
//
// A minimal QoS-enabled service:
//
//	sys, _ := maqs.NewSystem(maqs.Options{})
//	_ = sys.Listen("127.0.0.1:0")
//	skel := maqs.NewServerSkeleton(servant)
//	_ = skel.AddQoS(compressionImpl)
//	ref, _ := sys.ActivateQoS("svc", "IDL:demo/Svc:1.0", skel, info)
//
// and a client:
//
//	sys, _ := maqs.NewSystem(maqs.Options{})
//	stub := sys.Stub(ref)
//	binding, _ := stub.Negotiate(ctx, &maqs.Proposal{Characteristic: "Compression"})
//	out, _ := stub.Call(ctx, "fetch", args)
package maqs

import (
	"fmt"
	"log/slog"
	"time"

	"maqs/internal/characteristics/actuality"
	"maqs/internal/characteristics/compression"
	"maqs/internal/characteristics/encryption"
	"maqs/internal/characteristics/loadbalance"
	"maqs/internal/characteristics/replication"
	"maqs/internal/ior"
	"maqs/internal/netsim"
	"maqs/internal/obs"
	"maqs/internal/orb"
	"maqs/internal/qos"
	"maqs/internal/qos/transport"
	"maqs/internal/resilience"
)

// Re-exported core types. The aliases make the framework usable without
// reaching into internal packages.
type (
	// ORB is the object request broker.
	ORB = orb.ORB
	// IOR is an interoperable object reference.
	IOR = ior.IOR
	// QoSInfo advertises QoS capabilities inside an IOR.
	QoSInfo = ior.QoSInfo
	// Servant handles incoming requests.
	Servant = orb.Servant
	// ServerRequest is a request under dispatch.
	ServerRequest = orb.ServerRequest
	// Invocation is a client-side request.
	Invocation = orb.Invocation
	// Outcome is the result of an invocation.
	Outcome = orb.Outcome
	// Future is the rendezvous of an asynchronous invocation
	// (Stub.CallAsync, ORB.InvokeAsync, DII deferred Send).
	Future = orb.Future
	// MulticallResult is the per-element outcome of a batched Multicall.
	MulticallResult = orb.MulticallResult
	// SystemException is a broker-level failure.
	SystemException = orb.SystemException
	// UserException is an application-declared exception.
	UserException = orb.UserException

	// Stub is the QoS-aware client-side runtime.
	Stub = qos.Stub
	// Binding is a live QoS agreement.
	Binding = qos.Binding
	// Contract holds negotiated parameter values.
	Contract = qos.Contract
	// Proposal is a client's negotiation request.
	Proposal = qos.Proposal
	// ParamProposal is one requested parameter.
	ParamProposal = qos.ParamProposal
	// Offer is a server's capability statement.
	Offer = qos.Offer
	// ParamOffer is one offered parameter capability.
	ParamOffer = qos.ParamOffer
	// Value is a QoS parameter value.
	Value = qos.Value
	// Characteristic describes a QoS characteristic.
	Characteristic = qos.Characteristic
	// Mediator is the client-side QoS aspect.
	Mediator = qos.Mediator
	// Impl is the server-side QoS implementation.
	Impl = qos.Impl
	// ServerSkeleton wires QoS implementations around a servant.
	ServerSkeleton = qos.ServerSkeleton
	// Registry maps characteristic names to descriptors and mediators.
	Registry = qos.Registry
	// Monitor measures invocations.
	Monitor = qos.Monitor
	// Observation is one measured invocation.
	Observation = qos.Observation

	// Transport is the reflective QoS transport of an ORB.
	Transport = transport.Transport
	// Module is a transport-layer QoS module.
	Module = transport.Module

	// Observability bundles the metrics registry, span collector,
	// tracer and flight recorder threaded through the invocation path
	// (see internal/obs).
	Observability = obs.Observability
	// ObservabilityConfig sizes an Observability bundle (span collector
	// and flight recorder) for NewObservabilityWithConfig.
	ObservabilityConfig = obs.Config
	// MetricsRegistry is the lock-cheap metrics registry.
	MetricsRegistry = obs.Registry
	// SpanRecord is one finished span as stored by the collector.
	SpanRecord = obs.SpanRecord
	// FlightRecorder is the always-on bounded ring of per-invocation
	// records with anomaly-triggered dumps (see docs/OBSERVABILITY.md).
	FlightRecorder = obs.FlightRecorder
	// FlightRecord is one retained invocation record.
	FlightRecord = obs.FlightRecord
	// FlightDump is one frozen anomaly snapshot.
	FlightDump = obs.FlightDump
	// TailSampler buffers spans per trace and keeps only interesting
	// traces (errors, retries, sheds, deadline misses, SLO-slow,
	// anomalies) plus a configurable fraction of healthy ones.
	TailSampler = obs.TailSampler
	// TailSamplingConfig enables tail sampling via
	// ObservabilityConfig.TailSampling.
	TailSamplingConfig = obs.TailSamplingConfig
	// Profiler retains anomaly-triggered CPU/heap captures served on the
	// debug handler's /profile endpoint.
	Profiler = obs.Profiler
	// ProfilingConfig enables anomaly-triggered profiling via
	// ObservabilityConfig.Profiling.
	ProfilingConfig = obs.ProfilingConfig
	// ProfileCaptureSummary lists one retained capture on /profile.
	ProfileCaptureSummary = obs.ProfileCaptureSummary
	// TailSamplerStats aggregates a sampler's kept/dropped/pending view.
	TailSamplerStats = obs.TailSamplerStats

	// Network is the simulated network used for testing and experiments.
	Network = netsim.Network
	// Link describes simulated link characteristics.
	Link = netsim.Link

	// ResiliencePolicy configures client-side fault handling (retry,
	// backoff, circuit breaking) for Options.Resilience.
	ResiliencePolicy = resilience.Policy
	// RetryPolicy bounds per-invocation retries with backoff.
	RetryPolicy = resilience.RetryPolicy
	// BreakerPolicy shapes the per-endpoint circuit breaker.
	BreakerPolicy = resilience.BreakerPolicy
	// BreakerState is a circuit breaker state (closed/open/half-open).
	BreakerState = resilience.State
	// BreakerTransition is one observed breaker state change.
	BreakerTransition = resilience.Transition

	// FaultPlan is a deterministic fault-injection schedule for a
	// simulated Network (see Network.InstallFaults).
	FaultPlan = netsim.FaultPlan
	// FaultRule is one rule of a FaultPlan.
	FaultRule = netsim.FaultRule
	// FaultInjector executes an installed FaultPlan.
	FaultInjector = netsim.FaultInjector
	// FaultStats counts the faults an injector has fired.
	FaultStats = netsim.FaultStats

	// ClassPolicy bounds server-side dispatch for one QoS class
	// (workers, queue depth, deadline budget — see docs/ADMISSION.md).
	ClassPolicy = orb.ClassPolicy
	// AdmissionController maps QoS classes to dispatch policies learned
	// from negotiated contracts; plug its Policy method into
	// Options.AdmissionPolicy and hand it to ServerSkeleton.SetAdmission.
	AdmissionController = qos.AdmissionController

	// SLOEngine scores invocations against contract-derived objectives
	// and runs burn-rate alerting over rolling windows (see
	// docs/OBSERVABILITY.md).
	SLOEngine = qos.SLOEngine
	// SLOObjective is one service-level objective (target good fraction,
	// optional latency bound).
	SLOObjective = qos.Objective
	// SLOStatus is the /slo endpoint's JSON body.
	SLOStatus = qos.SLOStatus
	// SLOBurnEvent is one objective alert-state transition.
	SLOBurnEvent = qos.BurnEvent

	// Degrader walks a QoS contract down a degradation ladder when the
	// service degrades, and back up on recovery.
	Degrader = qos.Degrader
	// DegradeStep is one rung of a degradation ladder.
	DegradeStep = qos.DegradeStep
	// Rule declares a QoS violation over monitor statistics.
	Rule = qos.Rule
	// Stats is a snapshot of monitor statistics.
	Stats = qos.Stats
)

// Value constructors for proposals and contracts.
var (
	// Number wraps a numeric parameter value.
	Number = qos.Number
	// Text wraps a string parameter value.
	Text = qos.Text
	// Flag wraps a boolean parameter value.
	Flag = qos.Flag
	// NewNetwork constructs a simulated network.
	NewNetwork = netsim.NewNetwork
	// NewMonitor constructs an invocation monitor.
	NewMonitor = qos.NewMonitor
	// NewServerSkeleton wraps an application servant for QoS weaving.
	NewServerSkeleton = qos.NewServerSkeleton
	// ParseIOR parses a stringified object reference.
	ParseIOR = ior.Parse
	// NewObservability constructs a metrics + tracing + flight-recorder
	// bundle for Options.Observability.
	NewObservability = obs.New
	// NewObservabilityWithConfig constructs an explicitly sized bundle
	// (span-collector and flight-recorder capacities).
	NewObservabilityWithConfig = obs.NewWithConfig
	// NewMetricsObserver builds a Stub observer feeding client metrics
	// into a registry.
	NewMetricsObserver = qos.MetricsObserver
	// NewConformanceObserver builds a Stub observer scoring observations
	// against the negotiated contract's max_rtt_ms bound.
	NewConformanceObserver = qos.ConformanceObserver
	// DefaultResiliencePolicy returns the stock retry + breaker policy.
	DefaultResiliencePolicy = resilience.DefaultPolicy
	// NewSLOEngine builds a standalone SLO engine (NewSystem wires one
	// automatically when observability is enabled).
	NewSLOEngine = qos.NewSLOEngine
	// NewDegrader builds a QoS degradation ladder over a stub.
	NewDegrader = qos.NewDegrader
	// NewAdmissionController builds a contract-driven dispatch policy
	// source for Options.AdmissionPolicy.
	NewAdmissionController = qos.NewAdmissionController
	// PolicyFromContract derives one class's dispatch policy from its
	// negotiated contract.
	PolicyFromContract = qos.PolicyFromContract
)

// Tail-sampling keep/drop reasons (the {reason} label on
// maqs_trace_kept_total / maqs_trace_dropped_total).
const (
	TraceKeepError     = obs.KeepError
	TraceKeepRetry     = obs.KeepRetry
	TraceKeepShed      = obs.KeepShed
	TraceKeepDeadline  = obs.KeepDeadline
	TraceKeepSlow      = obs.KeepSlow
	TraceKeepAnomaly   = obs.KeepAnomaly
	TraceReasonHealthy = obs.ReasonHealthy
	TraceDropEvicted   = obs.DropEvicted
)

// Circuit breaker states.
const (
	// BreakerClosed lets all invocations through.
	BreakerClosed = resilience.Closed
	// BreakerOpen rejects invocations without dialing.
	BreakerOpen = resilience.Open
	// BreakerHalfOpen admits a limited number of probes.
	BreakerHalfOpen = resilience.HalfOpen
)

// Fault kinds for FaultRule declarations.
const (
	// FaultDrop blackholes matching segments.
	FaultDrop = netsim.FaultDrop
	// FaultDelay adds latency (plus jitter) to matching segments.
	FaultDelay = netsim.FaultDelay
	// FaultCorrupt flips one byte of matching segments.
	FaultCorrupt = netsim.FaultCorrupt
	// FaultReset severs the connection carrying a matching segment.
	FaultReset = netsim.FaultReset
	// FaultPartition refuses dials and severs traffic between two hosts
	// for the rule's time window.
	FaultPartition = netsim.FaultPartition
)

// Value kinds for ParamOffer declarations.
const (
	// KindNumber marks numeric parameters.
	KindNumber = qos.KindNumber
	// KindString marks string parameters.
	KindString = qos.KindString
	// KindBool marks boolean parameters.
	KindBool = qos.KindBool
)

// Names of the standard characteristics (the paper's evaluation set).
const (
	// Availability masks server crashes with replica groups.
	Availability = replication.Name
	// LoadBalancing spreads load over worker groups.
	LoadBalancing = loadbalance.Name
	// Compression shrinks payloads for small-bandwidth channels.
	Compression = compression.Name
	// Encryption protects payload privacy.
	Encryption = encryption.Name
	// Actuality bounds the staleness of results.
	Actuality = actuality.Name
)

// Options configures a System.
type Options struct {
	// Transport supplies dialing and listening; defaults to TCP. Use a
	// *Network (or Network.Host) for simulated deployments.
	Transport netsim.Transport
	// RequestTimeout bounds synchronous invocations (default 10s).
	RequestTimeout time.Duration
	// ConnsPerEndpoint stripes client traffic over up to this many
	// connections per server endpoint (least-pending pick), so highly
	// concurrent callers do not serialise on a single connection's write
	// path. 0 or 1 keeps one multiplexed connection per endpoint (see
	// docs/PERFORMANCE.md).
	ConnsPerEndpoint int
	// PipelineDepth caps reply-expecting requests in flight per
	// connection (per stripe member): senders -- synchronous and
	// asynchronous alike -- block once the window is full, so pipelined
	// clients exert backpressure instead of queueing unboundedly. 0
	// leaves the in-flight window unbounded (see docs/PERFORMANCE.md).
	PipelineDepth int
	// DispatchWorkers bounds concurrent server-side request handlers
	// per QoS class; requests beyond DispatchQueueDepth are shed with a
	// TRANSIENT exception. <= 0 keeps the unbounded
	// goroutine-per-request dispatch (see docs/ADMISSION.md).
	DispatchWorkers int
	// DispatchQueueDepth caps queued requests per class (0: default).
	DispatchQueueDepth int
	// DispatchDeadline sheds requests that queued longer than this
	// before reaching a worker (0: no deadline shedding).
	DispatchDeadline time.Duration
	// AdmissionPolicy overrides the dispatch policy per QoS class —
	// typically an AdmissionController's Policy method, which derives
	// policies from negotiated contracts.
	AdmissionPolicy func(class string) ClassPolicy
	// Logger receives diagnostics (default: discard).
	Logger *slog.Logger
	// SkipStandardCharacteristics leaves the registry empty; register
	// characteristics explicitly afterwards.
	SkipStandardCharacteristics bool
	// SkipStandardModules leaves the QoS transport without the standard
	// module factories (flate, secure).
	SkipStandardModules bool
	// Observability, when set, threads a metrics registry and tracer
	// through the system's invocation path: every server dispatch and
	// every Stub call is counted, timed and traced. Share one bundle
	// between client and server Systems of a process to collect complete
	// traces in one collector. Nil keeps the fast uninstrumented path.
	Observability *obs.Observability
	// Resilience, when set, installs client-side fault handling on the
	// ORB: per-invocation retry with exponential backoff and a circuit
	// breaker per endpoint (see docs/RESILIENCE.md). Nil disables both.
	Resilience *resilience.Policy
}

// System bundles one ORB with its QoS transport and characteristic
// registry: everything one process needs to act as a MAQS client, server
// or both.
type System struct {
	// ORB is the underlying broker.
	ORB *orb.ORB
	// Transport is the reflective QoS transport installed on the ORB.
	Transport *transport.Transport
	// Registry holds the registered QoS characteristics.
	Registry *qos.Registry
	// Observability is the bundle from Options.Observability, or nil.
	Observability *obs.Observability
	// SLO is the contract-driven SLO engine, wired to the bundle's
	// registry, flight recorder and /slo debug page. Nil when the system
	// is not observable (a nil engine is a safe no-op).
	SLO *qos.SLOEngine
}

// NewSystem builds a System: ORB, QoS transport (router + command
// handler + filters installed), and a registry preloaded with the
// standard characteristics unless disabled.
func NewSystem(opts Options) (*System, error) {
	o := orb.New(orb.Options{
		Transport:          opts.Transport,
		RequestTimeout:     opts.RequestTimeout,
		ConnsPerEndpoint:   opts.ConnsPerEndpoint,
		PipelineDepth:      opts.PipelineDepth,
		DispatchWorkers:    opts.DispatchWorkers,
		DispatchQueueDepth: opts.DispatchQueueDepth,
		DispatchDeadline:   opts.DispatchDeadline,
		AdmissionPolicy:    opts.AdmissionPolicy,
		Logger:             opts.Logger,
		Observability:      opts.Observability,
		Resilience:         opts.Resilience,
	})
	t := transport.Install(o)
	registry := qos.NewRegistry()
	sys := &System{ORB: o, Transport: t, Registry: registry, Observability: opts.Observability}
	if b := opts.Observability; b != nil {
		// Readiness checks for the /ready endpoint: breaker health (a
		// system with an open breaker is degraded, not ready) and a
		// bindings summary for operators.
		b.SetReadiness("breakers", func() (bool, string) {
			g := o.Breakers()
			if g == nil {
				return true, "resilience disabled"
			}
			open := 0
			endpoints := g.Endpoints()
			for _, ep := range endpoints {
				if g.Get(ep).State() == resilience.Open {
					open++
				}
			}
			if open > 0 {
				return false, fmt.Sprintf("%d of %d endpoint breakers open", open, len(endpoints))
			}
			return true, fmt.Sprintf("%d endpoint breakers closed", len(endpoints))
		})
		b.SetReadiness("bindings", func() (bool, string) {
			n := b.Registry.Gauge("maqs_client_bindings").Value()
			return true, fmt.Sprintf("%d QoS bindings negotiated", n)
		})
		sys.SLO = qos.NewSLOEngine(b.Registry, b.Flight)
		b.SetDebugPage("/slo", func() any { return sys.SLO.Status() })
		if b.Sampler != nil {
			// Contract-derived latency objectives double as the tail
			// sampler's per-class slow-trace thresholds, so "slow" means
			// "in SLO jeopardy", not an arbitrary constant.
			sys.SLO.SetLatencySink(b.Sampler.SetSlowThreshold)
		}
	}
	if !opts.SkipStandardModules {
		if err := compression.RegisterModule(t); err != nil {
			return nil, fmt.Errorf("maqs: %w", err)
		}
		if err := encryption.RegisterModule(t); err != nil {
			return nil, fmt.Errorf("maqs: %w", err)
		}
	}
	if !opts.SkipStandardCharacteristics {
		for _, register := range []func(*qos.Registry) error{
			replication.Register,
			loadbalance.Register,
			compression.Register,
			encryption.Register,
			actuality.Register,
		} {
			if err := register(registry); err != nil {
				return nil, fmt.Errorf("maqs: %w", err)
			}
		}
	}
	return sys, nil
}

// Listen binds the server side of the system.
func (s *System) Listen(addr string) error { return s.ORB.Listen(addr) }

// Shutdown stops the system.
func (s *System) Shutdown() { s.ORB.Shutdown() }

// Activate registers a servant and returns its reference.
func (s *System) Activate(key, typeID string, servant orb.Servant) (*ior.IOR, error) {
	return s.ORB.Adapter().Activate(key, typeID, servant)
}

// ActivateQoS registers a QoS-aware servant; the reference advertises the
// supported characteristics and modules.
func (s *System) ActivateQoS(key, typeID string, servant orb.Servant, info ior.QoSInfo) (*ior.IOR, error) {
	return s.ORB.Adapter().ActivateQoS(key, typeID, servant, info)
}

// Stub wraps a reference for QoS-aware invocation against this system's
// registry. When the system is observable, the stub is created with a
// metrics observer, a contract-conformance observer and an SLO-engine
// observer already attached (stack a Monitor with AddObserver).
func (s *System) Stub(ref *ior.IOR) *qos.Stub {
	stub := qos.NewStubWithRegistry(s.ORB, ref, s.Registry)
	if s.Observability != nil {
		stub.AddObserver(qos.MetricsObserver(s.Observability.Registry))
		stub.AddObserver(qos.ConformanceObserver(stub, s.Observability.Registry, s.Observability.Flight))
		stub.AddObserver(s.SLO.ObserverForStub(stub))
	}
	return stub
}

// LoadModule loads a QoS transport module locally (both peers of a
// module-backed characteristic must load it).
func (s *System) LoadModule(name string, config map[string]string) error {
	return s.Transport.Load(name, config)
}

// StandardModules maps characteristic names to the transport module each
// one needs (empty for purely application-layer characteristics).
func StandardModules() map[string]string {
	return map[string]string{
		Availability:  "",
		LoadBalancing: "",
		Compression:   compression.ModuleName,
		Encryption:    encryption.ModuleName,
		Actuality:     "",
	}
}
