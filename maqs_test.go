package maqs_test

import (
	"bytes"
	"context"
	"testing"

	"maqs"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/compression"
	"maqs/internal/characteristics/encryption"
	"maqs/internal/orb"
)

// docServant serves a compressible document.
type docServant struct{ doc []byte }

func (s *docServant) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "fetch":
		req.Out.WriteOctets(s.doc)
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no op %q", req.Operation)
	}
}

func newPair(t *testing.T) (server, client *maqs.System, net *maqs.Network) {
	t.Helper()
	n := maqs.NewNetwork()
	srv, err := maqs.NewSystem(maqs.Options{Transport: n.Host("server")})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cli.Shutdown()
		srv.Shutdown()
	})
	return srv, cli, n
}

func TestSystemEndToEndCompression(t *testing.T) {
	server, client, _ := newPair(t)
	if err := server.Listen("server:5000"); err != nil {
		t.Fatal(err)
	}
	if err := server.LoadModule(maqs.StandardModules()[maqs.Compression], nil); err != nil {
		t.Fatal(err)
	}
	if err := client.LoadModule(maqs.StandardModules()[maqs.Compression], nil); err != nil {
		t.Fatal(err)
	}

	doc := bytes.Repeat([]byte("all work and no play makes jack a dull boy "), 200)
	skel := maqs.NewServerSkeleton(&docServant{doc: doc})
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		t.Fatal(err)
	}
	ref, err := server.ActivateQoS("doc", "IDL:demo/Doc:1.0", skel,
		maqs.QoSInfo{Characteristics: []string{maqs.Compression}, Modules: []string{compression.ModuleName}})
	if err != nil {
		t.Fatal(err)
	}

	stub := client.Stub(ref)
	binding, err := stub.Negotiate(context.Background(), &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(9)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if binding.Contract.Number("level", 0) != 9 {
		t.Fatalf("contract = %+v", binding.Contract)
	}
	d, err := stub.Call(context.Background(), "fetch", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadOctets()
	if err != nil || !bytes.Equal(got, doc) {
		t.Fatalf("fetch mismatch: %d bytes, %v", len(got), err)
	}
}

func TestSystemStandardRegistryComplete(t *testing.T) {
	sys, err := maqs.NewSystem(maqs.Options{Transport: maqs.NewNetwork()})
	defer sys.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	names := sys.Registry.Names()
	want := []string{maqs.Actuality, maqs.Availability, maqs.Compression, maqs.Encryption, maqs.LoadBalancing}
	if len(names) != len(want) {
		t.Fatalf("registry = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
	// Standard module factories are registered (loadable).
	if err := sys.LoadModule(compression.ModuleName, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadModule(encryption.ModuleName, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSystemSkipOptions(t *testing.T) {
	sys, err := maqs.NewSystem(maqs.Options{
		Transport:                   maqs.NewNetwork(),
		SkipStandardCharacteristics: true,
		SkipStandardModules:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	if n := len(sys.Registry.Names()); n != 0 {
		t.Fatalf("registry has %d entries", n)
	}
	if err := sys.LoadModule(compression.ModuleName, nil); err == nil {
		t.Fatal("module factory present despite skip")
	}
}

func TestIORStringRoundTripThroughFacade(t *testing.T) {
	server, client, _ := newPair(t)
	if err := server.Listen("server:5001"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.Activate("obj", "IDL:demo/Obj:1.0", orb.ServantFunc(func(req *maqs.ServerRequest) error {
		req.Out.WriteString("hi")
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := maqs.ParseIOR(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	stub := client.Stub(parsed)
	d, err := stub.Call(context.Background(), "greet", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := d.ReadString(); s != "hi" {
		t.Fatalf("greet = %q", s)
	}
}

func TestMonitorThroughFacade(t *testing.T) {
	server, client, _ := newPair(t)
	if err := server.Listen("server:5002"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.Activate("obj", "IDL:demo/Obj:1.0", orb.ServantFunc(func(req *maqs.ServerRequest) error {
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	stub := client.Stub(ref)
	mon := maqs.NewMonitor(8)
	stub.SetObserver(mon.Observe)
	e := cdr.NewEncoder(client.ORB.Order())
	e.WriteString("x")
	for i := 0; i < 4; i++ {
		if _, err := stub.Call(context.Background(), "op", e.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if st := mon.Snapshot(); st.Count != 4 || st.Mean <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}
