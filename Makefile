GO ?= go

# Benchmark trajectory file produced by `make bench`. Bump the number when a
# PR meaningfully changes the performance story so the history accumulates
# (BENCH_1.json, BENCH_2.json, ...): see docs/PERFORMANCE.md.
BENCH_OUT ?= BENCH_5.json

# Trajectory file produced by `make loadgen` (the open-loop load harness's
# full default run): see docs/LOADGEN.md.
LOADGEN_OUT ?= BENCH_8.json

# Trajectory file produced by `make loadgen-pipeline` (the sequential vs
# pipelined vs batched per-connection comparison): see docs/PERFORMANCE.md.
PIPELINE_OUT ?= BENCH_9.json

# Trajectory file produced by `make loadgen-traced` (the pipelined
# comparison re-run with tail-based trace sampling on, recording the
# kept/dropped tallies next to the latency results): docs/OBSERVABILITY.md.
TRACED_OUT ?= BENCH_10.json

# Final live-status snapshot written by the loadgen smoke run (the /loadgen
# debug view, including the self-server's admission counters); CI archives
# it next to the BENCH_*.json trajectory.
LOADGEN_STATUS ?= loadgen-status.json

# Artifacts from the loadgen smoke run's observability surface: the kept
# trace spans (tail sampling at a 10% healthy keep) and any
# anomaly-triggered profile captures; CI uploads both.
TRACE_SNAPSHOT ?= loadgen-traces.json
PROFILE_DIR ?= loadgen-profiles

# Coverage floor (percent) enforced by `make cover` on the observability
# and QoS packages: the flight recorder, debug endpoints and the SLO/burn
# engine are the forensics layer, so they stay thoroughly tested. The
# merged profile lands in COVER_PROFILE for CI to archive.
COVER_PKGS ?= ./internal/obs ./internal/qos
COVER_FLOOR ?= 75
COVER_PROFILE ?= coverprofile.out

.PHONY: all check vet build test race bench bench-smoke loadgen loadgen-smoke loadgen-pipeline loadgen-traced slo-smoke chaos cover clean

all: check

# check is the full gate: vet, build everything, race-enabled tests, the
# chaos suite (fault injection + resilience) on its own for a readable
# verdict, the SLO-engine smoke, the coverage floors, a one-iteration
# bench smoke so benchmark code can't rot, and the loadgen smoke run so
# the open-loop harness keeps driving a real server end to end.
check: vet build race chaos slo-smoke cover bench-smoke loadgen-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark family with allocation accounting and records
# the parsed results as a JSON trajectory point (see docs/PERFORMANCE.md
# for the format and how to compare points across PRs).
bench:
	$(GO) test -bench=. -benchmem -benchtime=200ms -run='^$$' . ./internal/orb ./internal/cdr | $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# bench-smoke executes each benchmark exactly once: it proves the bench
# harness still compiles and runs without paying measurement time.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' . ./internal/orb ./internal/cdr

# loadgen runs the full open-loop trajectory workload (>=100k requests
# across three QoS classes) against an in-process server and records the
# coordinated-omission-correct percentiles (see docs/LOADGEN.md). The
# workload deliberately exceeds one machine's capacity, so the server
# runs with a dispatch deadline: requests that outwait 250ms in the
# dispatch queue are shed with TRANSIENT (docs/ADMISSION.md), keeping
# the served percentiles flat and reporting the excess as shed counts.
loadgen:
	$(GO) run ./cmd/maqs-loadgen -self -scenario default -seed 1 -shed-deadline 250ms -o $(LOADGEN_OUT)

# loadgen-pipeline runs the per-connection throughput comparison behind
# BENCH_9.json: sequential, pipelined (CallAsync, depth 64) and batched
# (Multicall, batch 32) echo classes, each one identity on one connection
# over a simulated 200us link, under the same saturating schedule. The
# pipelined class's requests/sec per connection must multiply the
# sequential baseline's (see docs/PERFORMANCE.md).
loadgen-pipeline:
	$(GO) run ./cmd/maqs-loadgen -self -scenario pipeline -seed 1 -netsim-latency 200us -o $(PIPELINE_OUT)

# loadgen-traced re-runs the pipelined comparison with tail-based trace
# sampling enabled (anomalous traces always kept, 10% of healthy ones):
# BENCH_10.json records the per-class kept/dropped/evicted tallies next
# to the latency percentiles, proving the sampler holds up under a
# saturating pipelined workload (see docs/OBSERVABILITY.md).
loadgen-traced:
	$(GO) run ./cmd/maqs-loadgen -self -scenario pipeline -seed 1 -netsim-latency 200us -tail-sample 0.1 -o $(TRACED_OUT)

# loadgen-smoke drives the ~1.2k-request smoke preset over loopback TCP:
# a fast end-to-end proof that the harness schedules, negotiates and
# reports. Fails on any request error, and leaves the final live-status
# view in $(LOADGEN_STATUS), the tail-sampled trace spans in
# $(TRACE_SNAPSHOT) and any anomaly-triggered profiles in $(PROFILE_DIR)
# for CI to archive.
loadgen-smoke:
	@out=$$($(GO) run ./cmd/maqs-loadgen -self -scenario smoke -seed 1 -report 10s -status-snapshot $(LOADGEN_STATUS) -tail-sample 0.1 -trace-snapshot $(TRACE_SNAPSHOT) -profile-dir $(PROFILE_DIR)) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | grep -q ', errors 0' || { echo "loadgen-smoke: request errors reported"; exit 1; }

# cover enforces the coverage floor on every package in COVER_PKGS and
# writes the merged statement-coverage profile to COVER_PROFILE. It fails
# when any package's statement coverage drops below COVER_FLOOR percent.
cover:
	@out=$$($(GO) test -cover -coverprofile=$(COVER_PROFILE) $(COVER_PKGS)) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	pcts=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	want=$$(echo "$(COVER_PKGS)" | wc -w); \
	got=$$(echo "$$pcts" | grep -c .); \
	if [ "$$got" -lt "$$want" ]; then echo "cover: coverage reported for $$got of $$want packages"; exit 1; fi; \
	for pct in $$pcts; do \
		awk "BEGIN { if ($$pct < $(COVER_FLOOR)) { printf \"cover: %.1f%% below floor $(COVER_FLOOR)%%\n\", $$pct; exit 1 } }" || exit 1; \
	done

# slo-smoke exercises the SLO engine's burn windows, state machine and
# facade wiring race-enabled — a focused gate that fails fast when the
# budget arithmetic or the degrader hookup regresses.
slo-smoke:
	$(GO) test -race -run 'TestSLO|TestWindowCounter|TestHealthAndReady' ./internal/qos ./internal/obs .

# chaos runs the fault-injection stress tests race-enabled: the seeded
# FaultPlan chaos run, the shed-storm overload case (TestChaosShedStorm,
# see docs/ADMISSION.md) and the targeted retry/breaker tests.
chaos:
	$(GO) test -race -run 'TestChaos|TestRetry|TestBreaker|TestNonIdempotent|TestFault' -v ./internal/orb ./internal/netsim ./internal/resilience

clean:
	$(GO) clean ./...
