GO ?= go

.PHONY: all check vet build test race bench chaos clean

all: check

# check is the full gate: vet, build everything, race-enabled tests, and
# the chaos suite (fault injection + resilience) on its own for a
# readable verdict.
check: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=200ms -run='^$$' .

# chaos runs the fault-injection stress tests race-enabled: the seeded
# FaultPlan chaos run plus the targeted retry/breaker tests.
chaos:
	$(GO) test -race -run 'TestChaos|TestRetry|TestBreaker|TestNonIdempotent|TestFault' -v ./internal/orb ./internal/netsim ./internal/resilience

clean:
	$(GO) clean ./...
