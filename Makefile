GO ?= go

.PHONY: all check vet build test race bench clean

all: check

# check is the full gate: vet, build everything, race-enabled tests.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=200ms -run='^$$' .

clean:
	$(GO) clean ./...
