package maqs_test

import (
	"context"
	"testing"

	"maqs"
)

// TestEchoCallAllocs is the end-to-end alloc-regression gate for the
// invocation hot path: one echo round trip over the in-memory network —
// stub, mediator, ORB, GIOP framing, server dispatch and back — must stay
// within a fixed allocation budget. The pooled hot path measures ~18
// allocations per call (42 before pooling, ~24 before the server-side
// decode pools and FrameReader body reuse, see docs/PERFORMANCE.md); the
// budget leaves headroom for scheduler noise without letting the older
// numbers back in.
func TestEchoCallAllocs(t *testing.T) {
	n := maqs.NewNetwork()
	server, err := maqs.NewSystem(maqs.Options{Transport: n.Host("server")})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	if err := server.Listen("server:1"); err != nil {
		t.Fatal(err)
	}
	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()

	ref, err := server.Activate("echo", "IDL:test/Echo:1.0", benchEcho{})
	if err != nil {
		t.Fatal(err)
	}
	stub := client.Stub(ref)
	args := encodeOctets(client.ORB.Order(), []byte("alloc gate payload"))
	ctx := context.Background()

	// Warm the path so connection setup and pool population are excluded.
	for i := 0; i < 10; i++ {
		if _, err := stub.Call(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		if _, err := stub.Call(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 28
	if avg > maxAllocs {
		t.Fatalf("echo round trip allocates %.1f objects/op, budget is %d (pre-pooling baseline was 42)", avg, maxAllocs)
	}
	t.Logf("echo round trip: %.1f allocs/op (budget %d)", avg, maxAllocs)
}

// TestServerDispatchAllocs is the same end-to-end gate with the server's
// bounded dispatch pools enabled: the worker-pool path adds queue
// handoff, pooled args scratch and a pooled ServerRequest, and must not
// reintroduce per-request garbage. Measured ~17 allocs/op — no more than
// the goroutine-per-request number, because the job, its args copy and
// the ServerRequest all come from pools.
func TestServerDispatchAllocs(t *testing.T) {
	n := maqs.NewNetwork()
	server, err := maqs.NewSystem(maqs.Options{
		Transport:          n.Host("server"),
		DispatchWorkers:    4,
		DispatchQueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	if err := server.Listen("server:1"); err != nil {
		t.Fatal(err)
	}
	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()

	ref, err := server.Activate("echo", "IDL:test/Echo:1.0", benchEcho{})
	if err != nil {
		t.Fatal(err)
	}
	stub := client.Stub(ref)
	args := encodeOctets(client.ORB.Order(), []byte("alloc gate payload"))
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if _, err := stub.Call(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
	}

	avg := testing.AllocsPerRun(200, func() {
		if _, err := stub.Call(ctx, "echo", args); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 28
	if avg > maxAllocs {
		t.Fatalf("bounded-dispatch round trip allocates %.1f objects/op, budget is %d", avg, maxAllocs)
	}
	t.Logf("bounded-dispatch round trip: %.1f allocs/op (budget %d)", avg, maxAllocs)
}

// TestEchoAsyncAllocs gates the asynchronous fast path: CallAsync + Wait
// for one echo must not allocate more than the synchronous call — the
// Future and its pendingReply rendezvous are pooled, the dispatch runs on
// the calling goroutine and the completion on the connection's read loop,
// so the only per-call additions are the future's done channel and the
// invocation struct the async path cannot stack-allocate. Measured ~17
// allocs/op — one below the synchronous path, which pays for a result
// wrapper the future replaces.
func TestEchoAsyncAllocs(t *testing.T) {
	n := maqs.NewNetwork()
	server, err := maqs.NewSystem(maqs.Options{Transport: n.Host("server")})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Shutdown()
	if err := server.Listen("server:1"); err != nil {
		t.Fatal(err)
	}
	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Shutdown()

	ref, err := server.Activate("echo", "IDL:test/Echo:1.0", benchEcho{})
	if err != nil {
		t.Fatal(err)
	}
	stub := client.Stub(ref)
	args := encodeOctets(client.ORB.Order(), []byte("alloc gate payload"))
	ctx := context.Background()

	call := func() {
		fut, err := stub.CallAsync(ctx, "echo", args)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		call()
	}

	avg := testing.AllocsPerRun(200, call)
	const maxAllocs = 28
	if avg > maxAllocs {
		t.Fatalf("async echo round trip allocates %.1f objects/op, budget is %d", avg, maxAllocs)
	}
	t.Logf("async echo round trip: %.1f allocs/op (budget %d)", avg, maxAllocs)
}
