package maqs_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"maqs"
)

// readyBody is the /ready JSON shape (mirrors obs.readyResponse).
type readyBody struct {
	Ready  bool `json:"ready"`
	Checks []struct {
		Name   string `json:"name"`
		OK     bool   `json:"ok"`
		Detail string `json:"detail"`
	} `json:"checks"`
}

func getStatus(t *testing.T, sys *maqs.System, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	sys.Observability.Handler().ServeHTTP(rr, req)
	return rr.Code, rr.Body.String()
}

// TestHealthAndReadyUnderOpenBreaker drives the facade's "breakers"
// readiness check through a full open→closed breaker cycle: liveness
// must stay green throughout (the process is alive, just degraded),
// while readiness flips 503 and back.
func TestHealthAndReadyUnderOpenBreaker(t *testing.T) {
	n := maqs.NewNetwork()
	policy := maqs.DefaultResiliencePolicy()
	policy.Breaker.FailureThreshold = 3
	policy.Breaker.OpenTimeout = 20 * time.Millisecond
	sys, err := maqs.NewSystem(maqs.Options{
		Transport:     n.Host("client"),
		Observability: maqs.NewObservability(),
		Resilience:    policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Shutdown)

	if code, _ := getStatus(t, sys, "/ready"); code != 200 {
		t.Fatalf("/ready before any traffic = %d, want 200", code)
	}

	// Trip one endpoint's breaker the way real traffic would: recorded
	// transport failures past the threshold.
	br := sys.ORB.Breakers().Get("server:6000")
	for i := 0; i < policy.Breaker.FailureThreshold; i++ {
		br.Record(false)
	}
	if br.State() != maqs.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}

	code, body := getStatus(t, sys, "/ready")
	if code != 503 {
		t.Fatalf("/ready with open breaker = %d, want 503; body %s", code, body)
	}
	var rb readyBody
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatalf("unmarshal /ready body: %v", err)
	}
	if rb.Ready {
		t.Fatal("ready=true with an open breaker")
	}
	found := false
	for _, c := range rb.Checks {
		if c.Name == "breakers" {
			found = true
			if c.OK || !strings.Contains(c.Detail, "open") {
				t.Fatalf("breakers check = %+v, want failing with open detail", c)
			}
		}
	}
	if !found {
		t.Fatalf("no breakers check in /ready body: %s", body)
	}

	// Liveness is unaffected: an open breaker degrades, it doesn't kill.
	if code, _ := getStatus(t, sys, "/health"); code != 200 {
		t.Fatalf("/health with open breaker = %d, want 200", code)
	}

	// Heal: after the open timeout one probe is admitted; its success
	// closes the breaker and readiness flips back.
	time.Sleep(2 * policy.Breaker.OpenTimeout)
	if !br.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	br.Record(true)
	if br.State() != maqs.BreakerClosed {
		t.Fatalf("breaker state after probe success = %v, want closed", br.State())
	}
	if code, body := getStatus(t, sys, "/ready"); code != 200 {
		t.Fatalf("/ready after recovery = %d, want 200; body %s", code, body)
	}
}
