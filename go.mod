module maqs

go 1.22
