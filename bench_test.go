// Benchmarks for the experiment index of DESIGN.md §4: one family per
// experiment (E1..E10). The table-producing harness is cmd/maqs-bench;
// these benches measure the same code paths under testing.B so regressions
// show up in go test -bench output.
package maqs_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"maqs"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/actuality"
	"maqs/internal/characteristics/compression"
	"maqs/internal/characteristics/encryption"
	"maqs/internal/characteristics/loadbalance"
	"maqs/internal/characteristics/replication"
	"maqs/internal/idl"
	"maqs/internal/idl/gen"
	"maqs/internal/orb"
	"maqs/internal/qos"
	"maqs/internal/qos/transport"
)

// benchEcho is the shared echo servant.
type benchEcho struct{}

func (benchEcho) Invoke(req *maqs.ServerRequest) error {
	p, err := req.In().ReadOctets()
	if err != nil {
		return err
	}
	req.Out.WriteOctets(p)
	return nil
}

// benchWorld wires a server and client System over an in-memory network.
type benchWorld struct {
	net    *maqs.Network
	server *maqs.System
	client *maqs.System
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	n := maqs.NewNetwork()
	server, err := maqs.NewSystem(maqs.Options{Transport: n.Host("server")})
	if err != nil {
		b.Fatal(err)
	}
	if err := server.Listen("server:1"); err != nil {
		b.Fatal(err)
	}
	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		client.Shutdown()
		server.Shutdown()
	})
	return &benchWorld{net: n, server: server, client: client}
}

func (w *benchWorld) activateEcho(b *testing.B, impls ...maqs.Impl) *maqs.IOR {
	b.Helper()
	skel := maqs.NewServerSkeleton(benchEcho{})
	for _, impl := range impls {
		if err := skel.AddQoS(impl); err != nil {
			b.Fatal(err)
		}
	}
	var chars, modules []string
	for _, impl := range impls {
		chars = append(chars, impl.Characteristic().Name)
	}
	ref, err := w.server.ActivateQoS("echo", "IDL:bench/Echo:1.0", skel,
		maqs.QoSInfo{Characteristics: chars, Modules: modules})
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

func encodeOctets(order cdr.ByteOrder, p []byte) []byte {
	e := cdr.NewEncoder(order)
	e.WriteOctets(p)
	return e.Bytes()
}

func mustCall(b *testing.B, stub *maqs.Stub, op string, args []byte) {
	b.Helper()
	if _, err := stub.Call(context.Background(), op, args); err != nil {
		b.Fatal(err)
	}
}

// nullImpl is a pass-through QoS implementation for interception benches.
func nullImpl() maqs.Impl {
	return &qos.BaseImpl{
		Desc: &qos.Characteristic{Name: "Null"},
		Capability: &qos.Offer{Characteristic: "Null",
			Params: []qos.ParamOffer{{Name: "x", Kind: maqs.KindNumber, Min: 0, Max: 1, Default: maqs.Number(0)}}},
	}
}

// --- E1: interception overhead ---------------------------------------------

func BenchmarkE1Interception(b *testing.B) {
	for _, size := range []int{0, 1024} {
		payload := bytes.Repeat([]byte{0xA5}, size)
		b.Run(fmt.Sprintf("plain/%dB", size), func(b *testing.B) {
			w := newBenchWorld(b)
			ref := w.activateEcho(b, nullImpl())
			stub := w.client.Stub(ref)
			args := encodeOctets(w.client.ORB.Order(), payload)
			mustCall(b, stub, "echo", args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
		b.Run(fmt.Sprintf("bound/%dB", size), func(b *testing.B) {
			w := newBenchWorld(b)
			ref := w.activateEcho(b, nullImpl())
			if err := w.client.Registry.Register(&qos.Characteristic{Name: "Null"}, nil); err != nil {
				b.Fatal(err)
			}
			stub := w.client.Stub(ref)
			if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{Characteristic: "Null"}); err != nil {
				b.Fatal(err)
			}
			args := encodeOctets(w.client.ORB.Order(), payload)
			mustCall(b, stub, "echo", args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
	}
}

// --- E2: dispatch branches --------------------------------------------------

func BenchmarkE2Dispatch(b *testing.B) {
	w := newBenchWorld(b)
	ref := w.activateEcho(b, nullImpl())
	args := encodeOctets(w.client.ORB.Order(), []byte("x"))
	ctx := context.Background()

	b.Run("plainIIOP", func(b *testing.B) {
		stub := w.client.Stub(ref)
		mustCall(b, stub, "echo", args)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, stub, "echo", args)
		}
	})
	b.Run("commandTransport", func(b *testing.B) {
		ctl := transport.NewController(w.client.ORB, ref)
		if _, err := ctl.List(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ctl.List(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E3: replication --------------------------------------------------------

func BenchmarkE3Replication(b *testing.B) {
	benchReplication(b, 0)
}

// BenchmarkE3ReplicationWAN runs the same fan-out over links with real
// propagation delay. With asynchronous dispatch the group's latency is
// the slowest replica's round trip (max-of-k), so k=5 tracks k=1 here —
// the zero-latency family above measures serialized per-replica CPU
// instead, which is k-linear on a single core by construction.
func BenchmarkE3ReplicationWAN(b *testing.B) {
	benchReplication(b, 200*time.Microsecond)
}

func benchReplication(b *testing.B, latency time.Duration) {
	for _, k := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			n := maqs.NewNetwork()
			if latency > 0 {
				n.SetDefaultLink(maqs.Link{Latency: latency})
			}
			endpoints := make([]string, k)
			for i := range endpoints {
				endpoints[i] = fmt.Sprintf("rep%d:1", i)
			}
			var firstRef *maqs.IOR
			for i := 0; i < k; i++ {
				sys, err := maqs.NewSystem(maqs.Options{Transport: n.Host(fmt.Sprintf("rep%d", i))})
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Shutdown()
				if err := sys.Listen(endpoints[i]); err != nil {
					b.Fatal(err)
				}
				skel := maqs.NewServerSkeleton(benchEcho{})
				if err := skel.AddQoS(replication.NewImpl(8, endpoints, nil)); err != nil {
					b.Fatal(err)
				}
				ref, err := sys.ActivateQoS("echo", "IDL:bench/Echo:1.0", skel,
					maqs.QoSInfo{Characteristics: []string{maqs.Availability}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					firstRef = ref
				}
			}
			cluster := firstRef.Clone()
			cluster.SetAlternateEndpoints(endpoints)
			client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			stub := client.Stub(cluster)
			if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
				Characteristic: maqs.Availability,
				Params:         []maqs.ParamProposal{{Name: "replicas", Desired: maqs.Number(float64(k))}},
			}); err != nil {
				b.Fatal(err)
			}
			args := encodeOctets(client.ORB.Order(), []byte("payload"))
			mustCall(b, stub, "echo", args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
	}
}

// --- E4: load balancing ------------------------------------------------------

func BenchmarkE4LoadBalance(b *testing.B) {
	for _, strategy := range []string{
		loadbalance.StrategyRoundRobin,
		loadbalance.StrategyRandom,
		loadbalance.StrategyLeastLoaded,
		loadbalance.StrategyWeighted,
	} {
		b.Run(strategy, func(b *testing.B) {
			n := maqs.NewNetwork()
			endpoints := []string{"w0:1", "w1:1", "w2:1", "w3:1"}
			var firstRef *maqs.IOR
			for i, ep := range endpoints {
				sys, err := maqs.NewSystem(maqs.Options{Transport: n.Host(fmt.Sprintf("w%d", i))})
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Shutdown()
				if err := sys.Listen(ep); err != nil {
					b.Fatal(err)
				}
				skel := maqs.NewServerSkeleton(benchEcho{})
				if err := skel.AddQoS(loadbalance.NewImpl(0, endpoints)); err != nil {
					b.Fatal(err)
				}
				ref, err := sys.ActivateQoS("farm", "IDL:bench/Farm:1.0", skel,
					maqs.QoSInfo{Characteristics: []string{maqs.LoadBalancing}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					firstRef = ref
				}
			}
			cluster := firstRef.Clone()
			cluster.SetAlternateEndpoints(endpoints)
			client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			stub := client.Stub(cluster)
			if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
				Characteristic: maqs.LoadBalancing,
				Params:         []maqs.ParamProposal{{Name: "strategy", Desired: maqs.Text(strategy)}},
			}); err != nil {
				b.Fatal(err)
			}
			args := encodeOctets(client.ORB.Order(), []byte("job"))
			mustCall(b, stub, "echo", args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
	}
}

// --- E5: compression over a constrained link ---------------------------------

func BenchmarkE5Compression(b *testing.B) {
	doc := bytes.Repeat([]byte("quality of service for everyone "), 128) // 4 KiB
	for _, mode := range []string{"plain", "compressed"} {
		b.Run(mode+"/4KiB@2Mbit", func(b *testing.B) {
			n := maqs.NewNetwork()
			n.SetLink("client", "server", maqs.Link{BitsPerSec: 2_000_000})
			server, err := maqs.NewSystem(maqs.Options{Transport: n.Host("server"), RequestTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			defer server.Shutdown()
			if err := server.Listen("server:1"); err != nil {
				b.Fatal(err)
			}
			if err := server.LoadModule(compression.ModuleName, nil); err != nil {
				b.Fatal(err)
			}
			skel := maqs.NewServerSkeleton(benchEcho{})
			if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
				b.Fatal(err)
			}
			ref, err := server.ActivateQoS("echo", "IDL:bench/Echo:1.0", skel,
				maqs.QoSInfo{Characteristics: []string{maqs.Compression}, Modules: []string{compression.ModuleName}})
			if err != nil {
				b.Fatal(err)
			}
			client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client"), RequestTimeout: time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			if err := client.LoadModule(compression.ModuleName, nil); err != nil {
				b.Fatal(err)
			}
			stub := client.Stub(ref)
			if mode == "compressed" {
				if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
					Characteristic: maqs.Compression,
				}); err != nil {
					b.Fatal(err)
				}
			}
			args := encodeOctets(client.ORB.Order(), doc)
			mustCall(b, stub, "echo", args)
			b.SetBytes(int64(len(doc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
	}
}

// --- E6: encryption -----------------------------------------------------------

func BenchmarkE6Encryption(b *testing.B) {
	for _, size := range []int{1 << 10, 64 << 10} {
		payload := bytes.Repeat([]byte{0x5A}, size)
		for _, mode := range []string{"plain", "secure"} {
			b.Run(fmt.Sprintf("%s/%dKiB", mode, size>>10), func(b *testing.B) {
				w := newBenchWorld(b)
				if err := w.server.LoadModule(encryption.ModuleName, nil); err != nil {
					b.Fatal(err)
				}
				if err := w.client.LoadModule(encryption.ModuleName, nil); err != nil {
					b.Fatal(err)
				}
				skel := maqs.NewServerSkeleton(benchEcho{})
				if err := skel.AddQoS(encryption.NewImpl(0)); err != nil {
					b.Fatal(err)
				}
				ref, err := w.server.ActivateQoS("secret", "IDL:bench/Secret:1.0", skel,
					maqs.QoSInfo{Characteristics: []string{maqs.Encryption}, Modules: []string{encryption.ModuleName}})
				if err != nil {
					b.Fatal(err)
				}
				stub := w.client.Stub(ref)
				if mode == "secure" {
					if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
						Characteristic: maqs.Encryption,
					}); err != nil {
						b.Fatal(err)
					}
				}
				args := encodeOctets(w.client.ORB.Order(), payload)
				mustCall(b, stub, "echo", args)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustCall(b, stub, "echo", args)
				}
			})
		}
	}
}

// --- E7: actuality -------------------------------------------------------------

func BenchmarkE7Actuality(b *testing.B) {
	run := func(b *testing.B, maxAgeMS float64) {
		w := newBenchWorld(b)
		skel := maqs.NewServerSkeleton(orb.ServantFunc(func(req *maqs.ServerRequest) error {
			req.Out.WriteLongLong(42)
			return nil
		}))
		impl := actuality.NewImpl(0, time.Minute)
		if err := skel.AddQoS(impl); err != nil {
			b.Fatal(err)
		}
		ref, err := w.server.ActivateQoS("clock", "IDL:bench/Clock:1.0", skel,
			maqs.QoSInfo{Characteristics: []string{maqs.Actuality}})
		if err != nil {
			b.Fatal(err)
		}
		stub := w.client.Stub(ref)
		if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
			Characteristic: maqs.Actuality,
			Params:         []maqs.ParamProposal{{Name: "max_age_ms", Desired: maqs.Number(maxAgeMS)}},
		}); err != nil {
			b.Fatal(err)
		}
		mustCall(b, stub, "get_value", nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, stub, "get_value", nil)
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
	b.Run("cached60s", func(b *testing.B) { run(b, 60_000) })
}

// --- E8: negotiation -------------------------------------------------------------

func BenchmarkE8Negotiation(b *testing.B) {
	w := newBenchWorld(b)
	ref := w.activateEcho(b, nullImpl())
	if err := w.client.Registry.Register(&qos.Characteristic{Name: "Null"}, nil); err != nil {
		b.Fatal(err)
	}
	proposal := &maqs.Proposal{Characteristic: "Null"}
	b.Run("negotiateRelease", func(b *testing.B) {
		stub := w.client.Stub(ref)
		for i := 0; i < b.N; i++ {
			if _, err := stub.Negotiate(context.Background(), proposal); err != nil {
				b.Fatal(err)
			}
			if err := stub.Release(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("renegotiate", func(b *testing.B) {
		stub := w.client.Stub(ref)
		if _, err := stub.Negotiate(context.Background(), proposal); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stub.Renegotiate(context.Background(), proposal); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: weaving ------------------------------------------------------------------

const benchQIDL = `
module bench {
  struct Item { string name; double value; };
  qos Guard { param long strength = 2; void guard_rotate(in string reason); };
  interface Store supports Guard {
    void put(in string key, in Item item);
    Item get(in string key);
    long add(in long a, in long b);
  };
};
`

func BenchmarkE9Weave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := idl.Parse("bench.qidl", benchQIDL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := gen.Generate(spec, gen.Options{Source: "bench.qidl"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9StaticVsDII(b *testing.B) {
	w := newBenchWorld(b)
	ref := w.activateEcho(b)
	args := encodeOctets(w.client.ORB.Order(), []byte("x"))
	b.Run("static", func(b *testing.B) {
		stub := w.client.Stub(ref)
		mustCall(b, stub, "echo", args)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, stub, "echo", args)
		}
	})
	b.Run("dii", func(b *testing.B) {
		octets := cdr.SequenceOf(cdr.TCOctet)
		for i := 0; i < b.N; i++ {
			req := w.client.ORB.CreateRequest(ref, "echo").
				AddArg("p", cdr.Octets([]byte("x")), orb.ArgIn).
				SetResultType(octets)
			if err := req.Invoke(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E10: module control -------------------------------------------------------------

func BenchmarkE10ModuleControl(b *testing.B) {
	w := newBenchWorld(b)
	ref := w.activateEcho(b)
	ctl := transport.NewController(w.client.ORB, ref)
	ctx := context.Background()
	b.Run("remoteLoadUnload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := ctl.Load(ctx, compression.ModuleName, nil); err != nil {
				b.Fatal(err)
			}
			if err := ctl.Unload(ctx, compression.ModuleName); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("localLoadUnload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := w.server.LoadModule(compression.ModuleName, nil); err != nil {
				b.Fatal(err)
			}
			if err := w.server.Transport.Unload(compression.ModuleName); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations: costs of optional design features -----------------------------

// BenchmarkAblationVoting isolates the cost of majority voting on top of
// active replication (k=3): the fan-out is identical, only the vote
// differs.
func BenchmarkAblationVoting(b *testing.B) {
	for _, voting := range []bool{false, true} {
		name := "novote"
		if voting {
			name = "vote"
		}
		b.Run(name, func(b *testing.B) {
			n := maqs.NewNetwork()
			endpoints := []string{"r0:1", "r1:1", "r2:1"}
			var firstRef *maqs.IOR
			for i, ep := range endpoints {
				sys, err := maqs.NewSystem(maqs.Options{Transport: n.Host(fmt.Sprintf("r%d", i))})
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Shutdown()
				if err := sys.Listen(ep); err != nil {
					b.Fatal(err)
				}
				skel := maqs.NewServerSkeleton(benchEcho{})
				if err := skel.AddQoS(replication.NewImpl(8, endpoints, nil)); err != nil {
					b.Fatal(err)
				}
				ref, err := sys.ActivateQoS("echo", "IDL:bench/Echo:1.0", skel,
					maqs.QoSInfo{Characteristics: []string{maqs.Availability}})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					firstRef = ref
				}
			}
			cluster := firstRef.Clone()
			cluster.SetAlternateEndpoints(endpoints)
			client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
			if err != nil {
				b.Fatal(err)
			}
			defer client.Shutdown()
			stub := client.Stub(cluster)
			if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{
				Characteristic: maqs.Availability,
				Params: []maqs.ParamProposal{
					{Name: "replicas", Desired: maqs.Number(3)},
					{Name: "voting", Desired: maqs.Flag(voting)},
				},
			}); err != nil {
				b.Fatal(err)
			}
			args := encodeOctets(client.ORB.Order(), []byte("ballot"))
			mustCall(b, stub, "echo", args)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, stub, "echo", args)
			}
		})
	}
}

// BenchmarkAblationChain compares a single transport module against a
// two-member chain carrying the same payload (the composition overhead).
func BenchmarkAblationChain(b *testing.B) {
	payload := bytes.Repeat([]byte("compressible payload body "), 64)
	run := func(b *testing.B, module string, setup func(*maqs.System) error) {
		w := newBenchWorld(b)
		if err := setup(w.server); err != nil {
			b.Fatal(err)
		}
		if err := setup(w.client); err != nil {
			b.Fatal(err)
		}
		impl := &qos.BaseImpl{
			Desc: &qos.Characteristic{Name: "Pipe"},
			Capability: &qos.Offer{Characteristic: "Pipe",
				Params: []qos.ParamOffer{{Name: "x", Kind: maqs.KindNumber, Min: 0, Max: 1, Default: maqs.Number(0)}}},
		}
		skel := maqs.NewServerSkeleton(benchEcho{})
		if err := skel.AddQoS(&moduleAssigningImpl{BaseImpl: *impl, module: module}); err != nil {
			b.Fatal(err)
		}
		ref, err := w.server.ActivateQoS("echo", "IDL:bench/Echo:1.0", skel,
			maqs.QoSInfo{Characteristics: []string{"Pipe"}, Modules: []string{module}})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.client.Registry.Register(&qos.Characteristic{Name: "Pipe"}, nil); err != nil {
			b.Fatal(err)
		}
		stub := w.client.Stub(ref)
		if _, err := stub.Negotiate(context.Background(), &maqs.Proposal{Characteristic: "Pipe"}); err != nil {
			b.Fatal(err)
		}
		args := encodeOctets(w.client.ORB.Order(), payload)
		mustCall(b, stub, "echo", args)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, stub, "echo", args)
		}
	}
	b.Run("flateOnly", func(b *testing.B) {
		run(b, compression.ModuleName, func(s *maqs.System) error {
			return s.LoadModule(compression.ModuleName, nil)
		})
	})
	b.Run("flateSecureChain", func(b *testing.B) {
		run(b, "zipcrypt", func(s *maqs.System) error {
			if err := s.Transport.RegisterChain("zipcrypt", compression.ModuleName, encryption.ModuleName); err != nil {
				return err
			}
			return s.LoadModule("zipcrypt", nil)
		})
	})
}

// moduleAssigningImpl assigns an arbitrary module to admitted bindings.
type moduleAssigningImpl struct {
	qos.BaseImpl
	module string
}

func (i *moduleAssigningImpl) BindingUp(b *maqs.Binding) error {
	b.Module = i.module
	return nil
}

// BenchmarkAblationFragmentation compares unfragmented and fragmented
// delivery of a 256 KiB payload over the in-memory link.
func BenchmarkAblationFragmentation(b *testing.B) {
	payload := make([]byte, 256<<10)
	for _, maxFrag := range []int{0, 16 << 10, 64 << 10} {
		name := "off"
		if maxFrag > 0 {
			name = fmt.Sprintf("%dKiB", maxFrag>>10)
		}
		b.Run(name, func(b *testing.B) {
			n := maqs.NewNetwork()
			server := orb.New(orb.Options{Transport: n.Host("server"), MaxFragment: maxFrag})
			if err := server.Listen("server:1"); err != nil {
				b.Fatal(err)
			}
			defer server.Shutdown()
			ref, err := server.Adapter().Activate("echo", "IDL:bench/Echo:1.0",
				orb.ServantFunc(func(req *maqs.ServerRequest) error {
					p, err := req.In().ReadOctets()
					if err != nil {
						return err
					}
					req.Out.WriteOctets(p)
					return nil
				}))
			if err != nil {
				b.Fatal(err)
			}
			client := orb.New(orb.Options{Transport: n.Host("client"), MaxFragment: maxFrag})
			defer client.Shutdown()
			args := encodeOctets(client.Order(), payload)
			call := func() {
				out, err := client.Invoke(context.Background(), &maqs.Invocation{
					Target: ref, Operation: "echo", Args: args, ResponseExpected: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := out.Err(); err != nil {
					b.Fatal(err)
				}
			}
			call()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				call()
			}
		})
	}
}
