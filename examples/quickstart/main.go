// Quickstart: one process playing server and client over loopback TCP.
//
// The server exposes an echo object that supports the Compression QoS
// characteristic; the client negotiates a compression contract and calls
// through the QoS-aware stub. This is the smallest end-to-end MAQS
// deployment: ORB + QoS transport + one characteristic.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"maqs"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/compression"
	"maqs/internal/orb"
)

// echoServant is the application object: no QoS code anywhere.
type echoServant struct{}

func (echoServant) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "echo":
		msg, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		req.Out.WriteOctets(msg)
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no operation %q", req.Operation)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// --- server side ---------------------------------------------------
	server, err := maqs.NewSystem(maqs.Options{})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	if err := server.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	// The compression mechanism lives in a transport-layer QoS module;
	// the server loads it and advertises it in the IOR.
	if err := server.LoadModule(compression.ModuleName, nil); err != nil {
		return err
	}
	skel := maqs.NewServerSkeleton(echoServant{})
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		return err
	}
	ref, err := server.ActivateQoS("echo", "IDL:quickstart/Echo:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression},
		Modules:         []string{compression.ModuleName},
	})
	if err != nil {
		return err
	}
	fmt.Printf("server up, object reference:\n  %.60s...\n\n", ref.String())

	// --- client side ---------------------------------------------------
	client, err := maqs.NewSystem(maqs.Options{})
	if err != nil {
		return err
	}
	defer client.Shutdown()
	if err := client.LoadModule(compression.ModuleName, nil); err != nil {
		return err
	}
	stub := client.Stub(ref)

	// Negotiate the QoS binding: this is where the mediator is woven
	// into the stub and the flate module assigned to the relationship.
	binding, err := stub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params: []maqs.ParamProposal{
			{Name: "level", Desired: maqs.Number(9)},
			{Name: "min_size", Desired: maqs.Number(64)},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("negotiated %s: level=%g module=%q binding=%s\n\n",
		binding.Characteristic, binding.Contract.Number("level", 0), binding.Module, binding.ID)

	// Invoke through the woven stub.
	payload := bytes.Repeat([]byte("middleware with quality of service "), 100)
	e := cdr.NewEncoder(client.ORB.Order())
	e.WriteOctets(payload)
	d, err := stub.Call(ctx, "echo", e.Bytes())
	if err != nil {
		return err
	}
	got, err := d.ReadOctets()
	if err != nil {
		return err
	}
	fmt.Printf("echoed %d bytes intact: %v\n", len(got), bytes.Equal(got, payload))

	// The module's statistics show the compression the application never
	// had to think about.
	if mod, ok := client.Transport.Module(compression.ModuleName); ok {
		s := mod.(*compression.Module).Stats()
		fmt.Printf("client module: %d B raw -> %d B on the wire (%.1fx)\n",
			s.RawBytes, s.WireBytes, float64(s.RawBytes)/float64(s.WireBytes))
	}
	return nil
}
