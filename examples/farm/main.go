// Farm: a compute farm with QoS-managed load balancing, discovered
// through the trading service and billed through the accounting service —
// the "infrastructure services" the paper lists as integral parts of a
// QoS framework (§2.2), around the LoadBalancing characteristic of its
// evaluation.
//
// Four workers (one deliberately slow) serve a hashing service. The
// client finds the farm via the trader with a QoS-capability constraint,
// negotiates least-loaded balancing, runs a burst of jobs, and finally
// pulls the bill for its binding.
//
// Run with:
//
//	go run ./examples/farm
package main

import (
	"context"
	"crypto/sha256"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"maqs"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/loadbalance"
	"maqs/internal/infra/accounting"
	"maqs/internal/infra/trader"
	"maqs/internal/orb"
)

// hashWorker does CPU-ish work with a configurable slowdown.
type hashWorker struct {
	name  string
	delay time.Duration
	mu    sync.Mutex
	jobs  int
}

func (w *hashWorker) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "hash":
		payload, err := req.In().ReadOctets()
		if err != nil {
			return err
		}
		if w.delay > 0 {
			time.Sleep(w.delay)
		}
		sum := sha256.Sum256(payload)
		w.mu.Lock()
		w.jobs++
		w.mu.Unlock()
		req.Out.WriteOctets(sum[:])
		req.Out.WriteString(w.name)
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no operation %q", req.Operation)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	n := maqs.NewNetwork()

	// --- deploy four workers -------------------------------------------
	endpoints := []string{"w0:7000", "w1:7000", "w2:7000", "w3:7000"}
	delays := []time.Duration{0, 0, 0, 40 * time.Millisecond} // w3 is slow
	workers := make([]*hashWorker, 4)
	meters := make([]*accounting.Meter, 4)
	var clusterRef *maqs.IOR
	for i, ep := range endpoints {
		host := fmt.Sprintf("w%d", i)
		sys, err := maqs.NewSystem(maqs.Options{Transport: n.Host(host)})
		if err != nil {
			return err
		}
		defer sys.Shutdown()
		if err := sys.Listen(ep); err != nil {
			return err
		}
		meters[i] = accounting.NewMeter()
		meters[i].SetTariff(maqs.LoadBalancing, accounting.Tariff{PerRequest: 0.01, PerKiB: 0.001})
		sys.ORB.AddIncomingFilter(meters[i])

		workers[i] = &hashWorker{name: host, delay: delays[i]}
		skel := maqs.NewServerSkeleton(workers[i])
		if err := skel.AddQoS(loadbalance.NewImpl(0, endpoints)); err != nil {
			return err
		}
		ref, err := sys.ActivateQoS("farm", "IDL:farm/Hasher:1.0", skel,
			maqs.QoSInfo{Characteristics: []string{maqs.LoadBalancing}})
		if err != nil {
			return err
		}
		if i == 0 {
			clusterRef = ref.Clone()
		}
	}
	clusterRef.SetAlternateEndpoints(endpoints)
	fmt.Println("farm up:", endpoints, "(w3 is slow)")

	// --- trading service -------------------------------------------------
	traderSys, err := maqs.NewSystem(maqs.Options{Transport: n.Host("trader")})
	if err != nil {
		return err
	}
	defer traderSys.Shutdown()
	if err := traderSys.Listen("trader:7100"); err != nil {
		return err
	}
	traderRef, err := traderSys.Activate(trader.ObjectKey, trader.RepoID, trader.NewServant())
	if err != nil {
		return err
	}

	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		return err
	}
	defer client.Shutdown()

	tc := trader.NewClient(client.ORB, traderRef)
	if _, err := tc.Export(ctx, &trader.ServiceOffer{
		ServiceType: "IDL:farm/Hasher:1.0",
		Ref:         clusterRef.String(),
		Properties:  map[string]string{"region": "eu", "workers": "4"},
		QoS: []*maqs.Offer{{
			Characteristic: maqs.LoadBalancing,
			Params: []maqs.ParamOffer{{
				Name: "strategy", Kind: maqs.KindString,
				Choices: []string{"round-robin", "random", "least-loaded"},
				Default: maqs.Text("round-robin"),
			}},
		}},
	}); err != nil {
		return err
	}

	// The client discovers a farm that can do least-loaded balancing.
	found, err := tc.Query(ctx, "IDL:farm/Hasher:1.0",
		`region == "eu" && qos.LoadBalancing.strategy == "least-loaded"`)
	if err != nil {
		return err
	}
	if len(found) == 0 {
		return fmt.Errorf("trader found no matching farm")
	}
	fmt.Printf("trader matched offer %s (region=%s)\n", found[0].ID, found[0].Properties["region"])
	farmRef, err := maqs.ParseIOR(found[0].Ref)
	if err != nil {
		return err
	}

	// --- negotiate and run the burst -------------------------------------
	stub := client.Stub(farmRef)
	binding, err := stub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.LoadBalancing,
		Params:         []maqs.ParamProposal{{Name: "strategy", Desired: maqs.Text("least-loaded")}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("negotiated LoadBalancing: strategy=%s binding=%s\n\n",
		binding.Contract.Text("strategy", "?"), binding.ID)

	payload := make([]byte, 2048)
	var wg sync.WaitGroup
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := cdr.NewEncoder(client.ORB.Order())
			e.WriteOctets(payload)
			if _, err := stub.Call(ctx, "hash", e.Bytes()); err != nil {
				log.Printf("job failed: %v", err)
			}
		}()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	fmt.Println("120 jobs done; per-worker distribution:")
	for i, w := range workers {
		w.mu.Lock()
		fmt.Printf("  %s: %3d jobs%s\n", w.name, w.jobs, map[bool]string{true: "  (slow)"}[delays[i] > 0])
		w.mu.Unlock()
	}

	// --- accounting -------------------------------------------------------
	fmt.Println("\naccounting statements across the farm:")
	var total float64
	var lines []accounting.Statement
	for _, m := range meters {
		lines = append(lines, m.Statements()...)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].BindingID < lines[j].BindingID })
	for _, s := range lines {
		fmt.Printf("  binding %s: %3d requests, %5d B in, %5d B out -> %.4f credits\n",
			s.BindingID[:8], s.Usage.Requests, s.Usage.BytesIn, s.Usage.BytesOut, s.Cost)
		total += s.Cost
	}
	fmt.Printf("total bill: %.4f credits\n", total)
	return nil
}
