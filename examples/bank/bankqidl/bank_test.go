package bank

import (
	"context"
	"errors"
	"fmt"
	"go/format"
	"os"
	"sync"
	"testing"
	"time"

	"maqs/internal/characteristics/replication"
	"maqs/internal/idl"
	"maqs/internal/idl/gen"
	"maqs/internal/ior"
	"maqs/internal/netsim"
	"maqs/internal/orb"
	"maqs/internal/qos"
)

// TestGeneratedCodeInSync regenerates the Go mapping from bank.qidl and
// compares it with the checked-in bank.gen.go, proving the committed code
// is exactly what qidlc emits (and, because this package compiles, that
// qidlc output compiles).
func TestGeneratedCodeInSync(t *testing.T) {
	src, err := os.ReadFile("bank.qidl")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := idl.Parse("examples/bank/bankqidl/bank.qidl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	code, err := gen.Generate(spec, gen.Options{Source: "examples/bank/bankqidl/bank.qidl"})
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := format.Source(code)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := os.ReadFile("bank.gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(formatted) != string(checked) {
		t.Fatal("bank.gen.go is out of sync with bank.qidl; rerun qidlc")
	}
}

// account is the application servant: plain Go, no QoS anywhere — the
// separation of concerns the weaving promises.
type account struct {
	mu      sync.Mutex
	balance float64
	entries []Entry
	notes   []string
}

var _ Account = (*account)(nil)

func (a *account) Deposit(amount float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += amount
	a.entries = append(a.entries, Entry{Label: "deposit", Amount: amount, At: uint64(len(a.entries))})
	return nil
}

func (a *account) Withdraw(amount float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if amount > a.balance {
		return 0, &Overdrawn{Balance: a.balance, Requested: amount}
	}
	a.balance -= amount
	a.entries = append(a.entries, Entry{Label: "withdraw", Amount: -amount, At: uint64(len(a.entries))})
	return a.balance, nil
}

func (a *account) Balance() (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, nil
}

func (a *account) History(limit uint32) ([]Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(limit) > len(a.entries) {
		limit = uint32(len(a.entries))
	}
	return append([]Entry(nil), a.entries[len(a.entries)-int(limit):]...), nil
}

func (a *account) Note(message string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.notes = append(a.notes, message)
	return nil
}

func (a *account) Convert(cents int32, from Currency, to Currency) (int32, error) {
	if from == to {
		return cents, nil
	}
	// Toy fixed rates, scaled by 1000.
	rate := map[Currency]int32{CurrencyEUR: 1000, CurrencyUSD: 1080, CurrencyGBP: 860}
	return cents * rate[to] / rate[from], nil
}

// availabilityImpl combines the generated QoS skeleton with the
// replication implementation's group management.
type availabilityHandler struct {
	synced []string
	mu     sync.Mutex
}

func (h *availabilityHandler) ReplSync(b *qos.Binding, member string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.synced = append(h.synced, member)
	return nil
}

type world struct {
	net     *netsim.Network
	server  *orb.ORB
	client  *orb.ORB
	servant *account
	stub    *AccountStub
	handler *availabilityHandler
}

func newWorld(t *testing.T) *world {
	t.Helper()
	n := netsim.NewNetwork()
	server := orb.New(orb.Options{Transport: n.Host("server")})
	if err := server.Listen("server:9700"); err != nil {
		t.Fatal(err)
	}
	servant := &account{}
	handler := &availabilityHandler{}
	availImpl := NewAvailabilityImplBase(nil, handler)
	skel, err := NewAccountServerSkeleton(servant, availImpl)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := server.Adapter().ActivateQoS("account-1", AccountRepoID, skel, AccountQoSInfo())
	if err != nil {
		t.Fatal(err)
	}
	client := orb.New(orb.Options{Transport: n.Host("client")})
	registry := qos.NewRegistry()
	if err := registry.Register(AvailabilityDescriptor(), nil); err != nil {
		t.Fatal(err)
	}
	stub := NewAccountStubWithRegistry(client, ref, registry)
	t.Cleanup(func() {
		client.Shutdown()
		server.Shutdown()
	})
	return &world{net: n, server: server, client: client, servant: servant, stub: stub, handler: handler}
}

func TestTypedStubRoundTrip(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.stub.Deposit(ctx, 100); err != nil {
		t.Fatal(err)
	}
	got, err := w.stub.Withdraw(ctx, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got != 70 {
		t.Fatalf("balance after withdraw = %g", got)
	}
	balance, err := w.stub.Balance(ctx)
	if err != nil || balance != 70 {
		t.Fatalf("balance = %g, %v", balance, err)
	}
}

func TestTypedUserException(t *testing.T) {
	w := newWorld(t)
	_, err := w.stub.Withdraw(context.Background(), 1000)
	var overdrawn *Overdrawn
	if !errors.As(err, &overdrawn) {
		t.Fatalf("err = %v (%T)", err, err)
	}
	if overdrawn.Balance != 0 || overdrawn.Requested != 1000 {
		t.Fatalf("exception = %+v", overdrawn)
	}
}

func TestStructSequenceResult(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := w.stub.Deposit(ctx, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := w.stub.History(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("history = %d entries", len(entries))
	}
	if entries[2].Amount != 5 || entries[2].Label != "deposit" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestEnumParameter(t *testing.T) {
	w := newWorld(t)
	cents, err := w.stub.Convert(context.Background(), 1000, CurrencyEUR, CurrencyUSD)
	if err != nil {
		t.Fatal(err)
	}
	if cents != 1080 {
		t.Fatalf("convert = %d", cents)
	}
	if CurrencyGBP.String() != "GBP" {
		t.Fatalf("enum name = %s", CurrencyGBP)
	}
}

func TestOneWayNote(t *testing.T) {
	w := newWorld(t)
	if err := w.stub.Note(context.Background(), "remember the milk"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		w.servant.mu.Lock()
		n := len(w.servant.notes)
		w.servant.mu.Unlock()
		if n == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("oneway note never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNegotiatedQoSOperationDispatch(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	// The generated QoS op is rejected without a binding...
	calls := AvailabilityCalls{Stub: w.stub.QoS()}
	err := calls.ReplSync(ctx, "replica-9")
	var sys *orb.SystemException
	if !errors.As(err, &sys) || sys.Name != orb.ExcBadQoS {
		t.Fatalf("err = %v", err)
	}
	// ...and dispatched to the handler once Availability is negotiated.
	b, err := w.stub.QoS().Negotiate(ctx, &qos.Proposal{
		Characteristic: AvailabilityName,
		Params:         []qos.ParamProposal{{Name: "replicas", Desired: qos.Number(3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	params := AvailabilityParams{Contract: b.Contract}
	if params.Replicas() != 3 || params.Strategy() != "active" || params.Voting() {
		t.Fatalf("typed params = %d %q %v", params.Replicas(), params.Strategy(), params.Voting())
	}
	if err := calls.ReplSync(ctx, "replica-9"); err != nil {
		t.Fatal(err)
	}
	w.handler.mu.Lock()
	defer w.handler.mu.Unlock()
	if len(w.handler.synced) != 1 || w.handler.synced[0] != "replica-9" {
		t.Fatalf("handler = %+v", w.handler.synced)
	}
}

func TestGeneratedCodeWithReplicationCharacteristic(t *testing.T) {
	// Full weave: generated stubs and skeletons running over the real
	// replication characteristic — three replicas, one crash, masked.
	n := netsim.NewNetwork()
	registry := qos.NewRegistry()
	if err := replication.Register(registry); err != nil {
		t.Fatal(err)
	}
	endpoints := []string{"rep0:9800", "rep1:9800", "rep2:9800"}
	var firstRef *ior.IOR
	accounts := make([]*account, 3)
	for i := 0; i < 3; i++ {
		host := fmt.Sprintf("rep%d", i)
		o := orb.New(orb.Options{Transport: n.Host(host)})
		if err := o.Listen(endpoints[i]); err != nil {
			t.Fatal(err)
		}
		defer o.Shutdown()
		accounts[i] = &account{}
		skel, err := NewAccountServerSkeleton(accounts[i],
			replication.NewImpl(8, endpoints, nil))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := o.Adapter().ActivateQoS("account", AccountRepoID, skel, AccountQoSInfo())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstRef = ref
		}
	}
	cluster := firstRef.Clone()
	cluster.SetAlternateEndpoints(endpoints)
	client := orb.New(orb.Options{Transport: n.Host("client")})
	defer client.Shutdown()
	stub := NewAccountStubWithRegistry(client, cluster, registry)
	ctx := context.Background()
	if _, err := stub.QoS().Negotiate(ctx, &qos.Proposal{
		Characteristic: replication.Name,
		Params:         []qos.ParamProposal{{Name: "replicas", Desired: qos.Number(3)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := stub.Deposit(ctx, 500); err != nil {
		t.Fatal(err)
	}
	// Every replica executed the update.
	for i, a := range accounts {
		a.mu.Lock()
		v := a.balance
		a.mu.Unlock()
		if v != 500 {
			t.Fatalf("replica %d balance = %g", i, v)
		}
	}
	// Crash one replica; the typed stub still works.
	n.Crash("rep1")
	balance, err := stub.Balance(ctx)
	if err != nil || balance != 500 {
		t.Fatalf("balance after crash = %g, %v", balance, err)
	}
	// Typed user exceptions survive the replicated path.
	_, err = stub.Withdraw(ctx, 1e9)
	var overdrawn *Overdrawn
	if !errors.As(err, &overdrawn) {
		t.Fatalf("err = %v", err)
	}
}
