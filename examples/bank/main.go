// Bank: the paper's availability discussion made runnable.
//
// Three replicas of a bank account run on a simulated network; the
// client negotiates the Availability characteristic (active replication,
// three replicas) through the QIDL-generated typed stub. A replica is
// crashed mid-session and the failure is masked; a restarted replica
// rejoins and is initialised through the aspect-integration interface
// (the state accessor) — the exact cross-cut the paper uses to argue
// that QoS is an aspect.
//
// Run with:
//
//	go run ./examples/bank
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"maqs"
	bank "maqs/examples/bank/bankqidl"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/replication"
	"maqs/internal/ior"
	"maqs/internal/orb"
	"maqs/internal/qos"
)

// account implements the generated bank.Account servant interface plus
// the state accessor for replica initialisation.
type account struct {
	mu      sync.Mutex
	balance float64
	entries []bank.Entry
}

var (
	_ bank.Account      = (*account)(nil)
	_ qos.StateAccessor = (*account)(nil)
)

func (a *account) Deposit(amount float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance += amount
	a.entries = append(a.entries, bank.Entry{Label: "deposit", Amount: amount, At: uint64(len(a.entries))})
	return nil
}

func (a *account) Withdraw(amount float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if amount > a.balance {
		return 0, &bank.Overdrawn{Balance: a.balance, Requested: amount}
	}
	a.balance -= amount
	a.entries = append(a.entries, bank.Entry{Label: "withdraw", Amount: -amount, At: uint64(len(a.entries))})
	return a.balance, nil
}

func (a *account) Balance() (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance, nil
}

func (a *account) History(limit uint32) ([]bank.Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(limit) > len(a.entries) {
		limit = uint32(len(a.entries))
	}
	return append([]bank.Entry(nil), a.entries[len(a.entries)-int(limit):]...), nil
}

func (a *account) Note(string) error { return nil }

func (a *account) Convert(cents int32, from, to bank.Currency) (int32, error) {
	return cents, nil
}

// GetState and SetState are the dedicated aspect-integration interface:
// replication reaches the encapsulated state only through them.
func (a *account) GetState() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := cdr.NewEncoder(cdr.BigEndian)
	e.WriteDouble(a.balance)
	bank.Entry{}.Marshal(e) // reserve layout versioning slot
	e.WriteULong(uint32(len(a.entries)))
	for _, en := range a.entries {
		en.Marshal(e)
	}
	return e.Bytes(), nil
}

func (a *account) SetState(data []byte) error {
	d := cdr.NewDecoder(data, cdr.BigEndian)
	balance, err := d.ReadDouble()
	if err != nil {
		return err
	}
	if _, err := bank.UnmarshalEntry(d); err != nil {
		return err
	}
	n, err := d.ReadULong()
	if err != nil {
		return err
	}
	entries := make([]bank.Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		en, err := bank.UnmarshalEntry(d)
		if err != nil {
			return err
		}
		entries = append(entries, en)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance = balance
	a.entries = entries
	return nil
}

// replica bundles one deployed replica.
type replica struct {
	orb     *orb.ORB
	servant *account
	impl    *replication.Impl
	ref     *ior.IOR
}

func startReplica(n *maqs.Network, host string, endpoints []string) (*replica, error) {
	o := orb.New(orb.Options{Transport: n.Host(host)})
	if err := o.Listen(host + ":9000"); err != nil {
		return nil, err
	}
	servant := &account{}
	impl := replication.NewImpl(8, endpoints, servant)
	skel, err := bank.NewAccountServerSkeleton(servant, impl)
	if err != nil {
		return nil, err
	}
	ref, err := o.Adapter().ActivateQoS("account", bank.AccountRepoID, skel, bank.AccountQoSInfo())
	if err != nil {
		return nil, err
	}
	return &replica{orb: o, servant: servant, impl: impl, ref: ref}, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	n := maqs.NewNetwork()
	endpoints := []string{"rep0:9000", "rep1:9000", "rep2:9000"}

	replicas := make([]*replica, 3)
	for i, host := range []string{"rep0", "rep1", "rep2"} {
		r, err := startReplica(n, host, endpoints)
		if err != nil {
			return err
		}
		defer r.orb.Shutdown()
		replicas[i] = r
	}
	fmt.Println("three account replicas up:", endpoints)

	cluster := replicas[0].ref.Clone()
	cluster.SetAlternateEndpoints(endpoints)

	client, err := maqs.NewSystem(maqs.Options{Transport: n.Host("client")})
	if err != nil {
		return err
	}
	defer client.Shutdown()
	stub := bank.NewAccountStubWithRegistry(client.ORB, cluster, client.Registry)

	binding, err := stub.QoS().Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Availability,
		Params: []maqs.ParamProposal{
			{Name: "replicas", Desired: maqs.Number(3)},
			{Name: "strategy", Desired: maqs.Text("active")},
		},
	})
	if err != nil {
		return err
	}
	params := bank.AvailabilityParams{Contract: binding.Contract}
	fmt.Printf("negotiated Availability: replicas=%d strategy=%s voting=%v\n\n",
		params.Replicas(), params.Strategy(), params.Voting())

	if err := stub.Deposit(ctx, 100); err != nil {
		return err
	}
	if err := stub.Deposit(ctx, 50); err != nil {
		return err
	}
	balance, _ := stub.Balance(ctx)
	fmt.Printf("deposited 100 + 50, balance = %.2f\n", balance)
	for i, r := range replicas {
		r.servant.mu.Lock()
		fmt.Printf("  replica %d holds balance %.2f (%d entries)\n", i, r.servant.balance, len(r.servant.entries))
		r.servant.mu.Unlock()
	}

	fmt.Println("\ncrashing rep1 ...")
	n.Crash("rep1")
	if newBalance, err := stub.Withdraw(ctx, 30); err != nil {
		return err
	} else {
		fmt.Printf("withdraw 30 succeeded despite the crash, balance = %.2f (failure masked)\n", newBalance)
	}

	// Typed user exception across the replicated path.
	if _, err := stub.Withdraw(ctx, 1_000_000); err != nil {
		var overdrawn *bank.Overdrawn
		if errors.As(err, &overdrawn) {
			fmt.Printf("over-withdrawal rejected with typed exception: balance=%.2f requested=%.2f\n",
				overdrawn.Balance, overdrawn.Requested)
		} else {
			return err
		}
	}

	fmt.Println("\nrestarting rep1 with empty state and rejoining ...")
	n.Restart("rep1")
	r1, err := startReplica(n, "rep1", endpoints)
	if err != nil {
		return err
	}
	defer r1.orb.Shutdown()
	if err := replication.Join(ctx, r1.orb, replicas[0].ref, "rep1:9000", r1.impl); err != nil {
		return err
	}
	r1.servant.mu.Lock()
	fmt.Printf("rejoined replica initialised via state transfer: balance = %.2f, %d entries\n",
		r1.servant.balance, len(r1.servant.entries))
	r1.servant.mu.Unlock()

	if err := stub.Deposit(ctx, 5); err != nil {
		return err
	}
	r1.servant.mu.Lock()
	fmt.Printf("after one more deposit the rejoined replica holds %.2f\n", r1.servant.balance)
	r1.servant.mu.Unlock()

	entries, err := stub.History(ctx, 10)
	if err != nil {
		return err
	}
	fmt.Printf("\naccount history (%d entries):\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  %-9s %+8.2f\n", e.Label, e.Amount)
	}
	return nil
}
