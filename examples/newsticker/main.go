// Newsticker: actuality-of-data and compression on a small-bandwidth
// channel — two of the QoS categories of the paper's evaluation, layered
// on one relationship the way the paper's mechanism hierarchy intends:
// the actuality mechanism is a pure application-layer mediator (client
// cache with a contracted max-age), while compression lives in a
// transport-layer QoS module.
//
// A ticker server publishes headlines over a simulated 256 kbit/s link.
// A first client binds Compression and fetches the full feed; a second
// client binds Actuality and polls the top headline, with most polls
// served from the contracted cache.
//
// Run with:
//
//	go run ./examples/newsticker
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"maqs"
	"maqs/internal/cdr"
	"maqs/internal/characteristics/actuality"
	"maqs/internal/characteristics/compression"
	"maqs/internal/orb"
)

// ticker serves headlines; the feed is intentionally repetitive (news
// prose compresses well).
type ticker struct {
	headlines []string
}

func (s *ticker) Invoke(req *maqs.ServerRequest) error {
	switch req.Operation {
	case "get_top":
		req.Out.WriteString(s.headlines[0])
		return nil
	case "fetch_feed":
		req.Out.WriteULong(uint32(len(s.headlines)))
		for _, h := range s.headlines {
			req.Out.WriteString(h)
		}
		return nil
	case "publish":
		h, err := req.In().ReadString()
		if err != nil {
			return err
		}
		s.headlines = append([]string{h}, s.headlines...)
		return nil
	default:
		return orb.NewSystemException(orb.ExcBadOperation, 1, "no operation %q", req.Operation)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	n := maqs.NewNetwork()
	// A slow last-mile link between reader and server.
	n.SetLink("reader", "ticker", maqs.Link{BitsPerSec: 256_000, Latency: 5 * time.Millisecond})

	server, err := maqs.NewSystem(maqs.Options{Transport: n.Host("ticker")})
	if err != nil {
		return err
	}
	defer server.Shutdown()
	if err := server.Listen("ticker:80"); err != nil {
		return err
	}
	if err := server.LoadModule(compression.ModuleName, nil); err != nil {
		return err
	}

	feed := &ticker{}
	for i := 0; i < 50; i++ {
		feed.headlines = append(feed.headlines,
			fmt.Sprintf("headline %02d: quality of service middleware separates concerns, experts repeat %s",
				i, strings.Repeat("again and ", 6)))
	}
	skel := maqs.NewServerSkeleton(feed)
	if err := skel.AddQoS(compression.NewImpl(0)); err != nil {
		return err
	}
	if err := skel.AddQoS(actuality.NewImpl(0, time.Minute)); err != nil {
		return err
	}
	ref, err := server.ActivateQoS("ticker", "IDL:news/Ticker:1.0", skel, maqs.QoSInfo{
		Characteristics: []string{maqs.Compression, maqs.Actuality},
		Modules:         []string{compression.ModuleName},
	})
	if err != nil {
		return err
	}

	reader, err := maqs.NewSystem(maqs.Options{Transport: n.Host("reader")})
	if err != nil {
		return err
	}
	defer reader.Shutdown()
	if err := reader.LoadModule(compression.ModuleName, nil); err != nil {
		return err
	}

	// --- full feed, compressed vs plain over the slow link --------------
	fetchFeed := func(stub *maqs.Stub) (time.Duration, error) {
		start := time.Now()
		d, err := stub.Call(ctx, "fetch_feed", nil)
		if err != nil {
			return 0, err
		}
		k, err := d.ReadULong()
		if err != nil {
			return 0, err
		}
		for i := uint32(0); i < k; i++ {
			if _, err := d.ReadString(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	plainStub := reader.Stub(ref)
	plainTime, err := fetchFeed(plainStub)
	if err != nil {
		return err
	}

	zipStub := reader.Stub(ref)
	if _, err := zipStub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Compression,
		Params:         []maqs.ParamProposal{{Name: "level", Desired: maqs.Number(9)}},
	}); err != nil {
		return err
	}
	zipTime, err := fetchFeed(zipStub)
	if err != nil {
		return err
	}
	fmt.Printf("full feed over 256 kbit/s: plain %v, compressed %v (%.1fx faster)\n",
		plainTime.Round(time.Millisecond), zipTime.Round(time.Millisecond),
		float64(plainTime)/float64(zipTime))

	// --- publish a burst of breaking news asynchronously ----------------
	// The wire-service feed fans out with CallAsync: every publish is on
	// the connection before the first reply returns, so the burst costs
	// one round trip over the slow link instead of one per headline.
	pubStub := reader.Stub(ref)
	burst := time.Now()
	futs := make([]*maqs.Future, 0, 5)
	for i := 0; i < 5; i++ {
		e := cdr.NewEncoder(pubStub.ORB().Order())
		e.WriteString(fmt.Sprintf("breaking %d: async dispatch pipelines the slow link", i))
		fut, err := pubStub.CallAsync(ctx, "publish", e.Bytes())
		if err != nil {
			return err
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if out, err := fut.Wait(ctx); err != nil {
			return err
		} else if err := out.Err(); err != nil {
			return err
		}
	}
	fmt.Printf("\npublished 5 headlines asynchronously in %v (pipelined on one connection)\n",
		time.Since(burst).Round(time.Millisecond))

	// --- actuality: poll the top headline under a freshness contract ----
	cacheStub := reader.Stub(ref)
	binding, err := cacheStub.Negotiate(ctx, &maqs.Proposal{
		Characteristic: maqs.Actuality,
		Params:         []maqs.ParamProposal{{Name: "max_age_ms", Desired: maqs.Number(500)}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nnegotiated Actuality: max_age=%gms\n", binding.Contract.Number("max_age_ms", 0))

	for i := 0; i < 20; i++ {
		d, err := cacheStub.Call(ctx, "get_top", nil)
		if err != nil {
			return err
		}
		if _, err := d.ReadString(); err != nil {
			return err
		}
	}
	med := cacheStub.Mediator().(*actuality.Mediator)
	st := med.Stats()
	fmt.Printf("polled top headline 20x: %d served from cache, %d from the origin\n", st.Hits, st.Misses)
	fmt.Printf("staleness bound honoured: every served value was at most 500ms old\n")
	return nil
}
